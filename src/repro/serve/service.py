"""The collision solve service: admission control, consistent-hash
routing, and the dynamic micro-batcher.

``CollisionSolveService`` accepts per-vertex solve jobs
(:class:`~repro.serve.jobs.SolveJob`: state + dt + mesh/species/options
key) and executes them at high throughput:

* **Routing** — a consistent-hash ring maps each plan key to one shard,
  so a plan's pair tables and band symbolics are built once and stay
  warm; adding a shard remaps only ``~1/num_shards`` of the key space.
* **Micro-batching** — each shard's dispatcher pops the queue head and
  coalesces jobs sharing its plan, waiting up to ``max_wait_ms`` for the
  batch to fill to ``max_batch``, then advances the whole batch with one
  :meth:`BatchedVertexSolver.step` (one field launch and one batched
  factorization per sweep instead of one per job).
* **Backpressure** — each shard's queue is bounded; :meth:`submit`
  raises :class:`~repro.resilience.ServiceOverloaded` when it is full,
  and jobs whose deadline lapses while queued are shed before compute.
* **Determinism** — :meth:`drain` processes queues synchronously in
  submission order, giving identical batch composition (hence bitwise
  identical floating-point results) across reruns; dispatcher threads
  (:meth:`start`) trade that for latency.

``executor="process"`` moves each shard into its own
``ProcessPoolExecutor`` worker (one warm worker per shard).  Plans are
published to a shard's worker once; each batch then ships only job
metadata plus the state stack through a shared-memory segment
(:mod:`repro.backend.shm`), so the warm ``PlanRuntime`` tensors live
exactly once per machine.  A worker killed mid-flight
(``BrokenProcessPool``) is re-initialized and the batch retried once —
``drain()`` never crashes on a dead worker — with the restart surfaced
as ``worker_restarts`` in shard snapshots.
"""

from __future__ import annotations

import bisect
import hashlib
import os
import threading
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import suppress
from dataclasses import dataclass

import numpy as np

from ..backend.shm import SharedArena, ShmBudgetExceeded
from ..resilience.exceptions import ServiceOverloaded
from .jobs import STATUS_FAILED, JobHandle, JobResult, SolveJob
from .metrics import merge_histograms
from .plan import SolvePlan
from .shard import (
    PlanNotPublished,
    ShardWorker,
    _process_execute,
    _process_init,
    _process_publish_plan,
    _process_snapshot,
)

__all__ = ["ServeOptions", "HashRing", "CollisionSolveService"]

_EXECUTORS = ("thread", "process")


@dataclass(frozen=True)
class ServeOptions:
    """Service sizing knobs (see EXPERIMENTS.md for the env overrides)."""

    num_shards: int = 2
    max_batch: int = 32
    max_wait_ms: float = 2.0
    queue_bound: int = 256
    executor: str = "thread"
    plan_budget: int | None = None  # bytes per shard's PlanCache; None = env
    vnodes: int = 32

    def __post_init__(self):
        if self.num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {self.num_shards}")
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.queue_bound < 1:
            raise ValueError(f"queue_bound must be >= 1, got {self.queue_bound}")
        if self.executor not in _EXECUTORS:
            raise ValueError(
                f"executor must be one of {_EXECUTORS}, got {self.executor!r}"
            )

    @classmethod
    def from_env(cls, **overrides) -> "ServeOptions":
        """Read ``REPRO_SERVE_*`` overrides (explicit kwargs win)."""
        env = os.environ
        kw = dict(
            num_shards=int(env.get("REPRO_SERVE_SHARDS", cls.num_shards)),
            max_batch=int(env.get("REPRO_SERVE_MAX_BATCH", cls.max_batch)),
            max_wait_ms=float(env.get("REPRO_SERVE_MAX_WAIT_MS", cls.max_wait_ms)),
            queue_bound=int(env.get("REPRO_SERVE_QUEUE_BOUND", cls.queue_bound)),
            executor=env.get("REPRO_SERVE_EXECUTOR", cls.executor),
        )
        kw.update(overrides)
        return cls(**kw)


def _hash64(text: str) -> int:
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring over shards with virtual nodes.

    Plan keys land on the first vnode clockwise of their hash; vnodes
    smooth the load split and keep remapping ``~1/num_shards`` of the key
    space when a shard is added or removed.
    """

    def __init__(self, num_shards: int, vnodes: int = 32):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        points = sorted(
            (_hash64(f"shard-{s}-vnode-{v}"), s)
            for s in range(num_shards)
            for v in range(vnodes)
        )
        self.num_shards = num_shards
        self._hashes = [h for h, _ in points]
        self._shards = [s for _, s in points]

    def route(self, key: str) -> int:
        i = bisect.bisect_right(self._hashes, _hash64(key)) % len(self._hashes)
        return self._shards[i]


class CollisionSolveService:
    """Accepts per-vertex collision solve jobs; batches, shards, caches.

    Two execution styles:

    * ``start()`` + ``submit()``: dispatcher threads micro-batch each
      shard's queue with the ``max_wait_ms`` coalescing window.
    * ``submit()`` + ``drain()``: synchronous, deterministic — queues are
      processed in submission order with reproducible batch composition
      (the mode the chaos tests rerun for bitwise stability).

    ``fault_injector`` (a :class:`repro.resilience.FaultInjector`) makes
    the delivery path fail on purpose; incompatible with
    ``executor="process"`` (the injector state lives in this process).
    """

    def __init__(self, options: ServeOptions | None = None, fault_injector=None):
        self.options = options or ServeOptions.from_env()
        if fault_injector is not None and self.options.executor == "process":
            raise ValueError(
                "fault injection requires executor='thread': the injector's "
                "seeded counters live in the submitting process and cannot "
                "follow jobs into shard worker processes. Unset "
                "REPRO_SERVE_EXECUTOR=process (or pass "
                "ServeOptions(executor='thread')) to run chaos scenarios."
            )
        n = self.options.num_shards
        self.ring = HashRing(n, vnodes=self.options.vnodes)
        self._queues: list[deque] = [deque() for _ in range(n)]
        self._conds = [threading.Condition() for _ in range(n)]
        self._rejected = [0] * n
        self._max_depth = [0] * n
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._started = False
        self._workers: list[ShardWorker] | None = None
        self._pools: list[ProcessPoolExecutor] | None = None
        #: per shard: plan keys already published to its worker process
        self._published_plans: list[set] = [set() for _ in range(n)]
        #: per shard: times its worker process died and was re-initialized
        self._restarts = [0] * n
        self._arena: SharedArena | None = None
        if self.options.executor == "process":
            self._pools = [self._make_pool(s) for s in range(n)]
            self._arena = SharedArena(tag="serve")
        else:
            self._workers = [
                ShardWorker(
                    s,
                    plan_budget=self.options.plan_budget,
                    fault_injector=fault_injector,
                )
                for s in range(n)
            ]

    def _make_pool(self, shard: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=1,
            initializer=_process_init,
            initargs=(shard, self.options.plan_budget),
        )

    def _restart_worker(self, shard: int) -> None:
        """Replace a dead shard worker process (satellite of the paper's
        resilience story: one crashed rank must not take down the drain)."""
        assert self._pools is not None
        old = self._pools[shard]
        with suppress(Exception):
            old.shutdown(wait=False, cancel_futures=True)
        self._pools[shard] = self._make_pool(shard)
        self._published_plans[shard].clear()
        self._restarts[shard] += 1

    # ------------------------------------------------------------------
    # admission
    def submit(
        self,
        plan: SolvePlan,
        state: np.ndarray,
        *,
        deadline_ms: float | None = None,
        job_id: str = "",
    ) -> JobHandle:
        """Admit one job; raises :class:`ServiceOverloaded` if the target
        shard's queue is full (callers should back off and retry)."""
        if deadline_ms is None:
            job = SolveJob(plan=plan, state=state, job_id=job_id)
        else:
            job = SolveJob.with_deadline_ms(plan, state, deadline_ms, job_id=job_id)
        shard = self.ring.route(plan.key)
        handle = JobHandle(job)
        cond = self._conds[shard]
        with cond:
            q = self._queues[shard]
            if len(q) >= self.options.queue_bound:
                self._rejected[shard] += 1
                if self._workers is not None:
                    self._workers[shard].metrics.rejected_submissions += 1
                raise ServiceOverloaded(
                    f"shard {shard} queue full "
                    f"({len(q)}/{self.options.queue_bound} jobs)"
                )
            q.append((job, handle))
            depth = len(q)
            if depth > self._max_depth[shard]:
                self._max_depth[shard] = depth
            if self._workers is not None:
                self._workers[shard].metrics.record_queue_depth(depth)
            cond.notify()
        return handle

    def solve_many(
        self,
        plan: SolvePlan,
        states,
        *,
        deadline_ms: float | None = None,
        timeout: float | None = 120.0,
    ) -> list[JobResult]:
        """Submit a batch of same-plan jobs and wait for all results.

        When the service is not started, the queues are drained
        synchronously (deterministic mode)."""
        handles = [
            self.submit(plan, s, deadline_ms=deadline_ms) for s in states
        ]
        if not self._started:
            self.drain()
        return [h.result(timeout) for h in handles]

    # ------------------------------------------------------------------
    # batching + execution
    def _take_batch(self, shard: int, head: tuple) -> list[tuple]:
        """Coalesce queued jobs sharing the head job's plan (caller holds
        the shard condition lock)."""
        batch = [head]
        key = head[0].plan.key
        q = self._queues[shard]
        i = 0
        while i < len(q) and len(batch) < self.options.max_batch:
            if q[i][0].plan.key == key:
                batch.append(q[i])
                del q[i]
            else:
                i += 1
        return batch

    def _execute(self, shard: int, batch: list[tuple]) -> None:
        jobs = [job for job, _ in batch]
        handles = {job.job_id: handle for job, handle in batch}
        if self._pools is not None:
            for job_id, res in self._execute_process(shard, jobs):
                handles[job_id].set_result(res)
        else:
            assert self._workers is not None
            for job, res in self._workers[shard].execute_batch(jobs):
                handles[job.job_id].set_result(res)

    # ------------------------------------------------------------------
    # process-executor dispatch: publish-once plans, shm state shipping,
    # BrokenProcessPool self-healing
    def _publish_plan(self, shard: int, plan: SolvePlan) -> None:
        assert self._pools is not None
        if plan.key not in self._published_plans[shard]:
            self._pools[shard].submit(_process_publish_plan, plan).result()
            self._published_plans[shard].add(plan.key)

    def _process_round(self, shard: int, jobs: list[SolveJob]) -> list[tuple]:
        """One publish-if-needed + execute round against a shard worker."""
        assert self._pools is not None and self._arena is not None
        plan = jobs[0].plan
        self._publish_plan(shard, plan)
        states = np.stack([j.state for j in jobs])
        meta = [(j.job_id, j.deadline, j.submitted) for j in jobs]
        seg = handle = None
        try:
            seg = self._arena.alloc(states.shape, states.dtype)
            seg[...] = states
            handle = self._arena.handle_of(seg)
            payload = ("shm", handle)
        except (ShmBudgetExceeded, OSError):
            payload = ("inline", states)
        try:
            pool = self._pools[shard]
            try:
                return pool.submit(
                    _process_execute, plan.key, meta, payload
                ).result()
            except PlanNotPublished:
                # defensive: the worker lost its store without breaking
                # the pool — republish and retry once
                self._published_plans[shard].discard(plan.key)
                self._publish_plan(shard, plan)
                return pool.submit(
                    _process_execute, plan.key, meta, payload
                ).result()
        finally:
            if handle is not None:
                del seg
                self._arena.free(handle.name)

    def _execute_process(self, shard: int, jobs: list[SolveJob]) -> list[tuple]:
        try:
            return self._process_round(shard, jobs)
        except BrokenProcessPool:
            self._restart_worker(shard)
            try:
                return self._process_round(shard, jobs)
            except BrokenProcessPool:
                # died twice on the same batch: fail these jobs, keep the
                # service alive for the rest of the drain
                self._restart_worker(shard)
                now = time.monotonic()
                return [
                    (
                        j.job_id,
                        JobResult(
                            job_id=j.job_id,
                            status=STATUS_FAILED,
                            error=(
                                "shard worker process died twice executing "
                                "this batch"
                            ),
                            shard=shard,
                            batch_size=len(jobs),
                            latency_s=now - j.submitted,
                        ),
                    )
                    for j in jobs
                ]

    def _dispatch_loop(self, shard: int) -> None:
        cond = self._conds[shard]
        q = self._queues[shard]
        wait_s = self.options.max_wait_ms / 1e3
        while True:
            with cond:
                while not q and not self._stop.is_set():
                    cond.wait(0.05)
                if not q and self._stop.is_set():
                    return
                batch = self._take_batch(shard, q.popleft())
                # hold the coalescing window open while the batch fills
                deadline = time.monotonic() + wait_s
                while len(batch) < self.options.max_batch:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    cond.wait(remaining)
                    key = batch[0][0].plan.key
                    i = 0
                    while i < len(q) and len(batch) < self.options.max_batch:
                        if q[i][0].plan.key == key:
                            batch.append(q[i])
                            del q[i]
                        else:
                            i += 1
            self._execute(shard, batch)

    # ------------------------------------------------------------------
    # lifecycle
    def start(self) -> "CollisionSolveService":
        if self._started:
            return self
        self._stop.clear()
        self._threads = [
            threading.Thread(
                target=self._dispatch_loop,
                args=(s,),
                name=f"serve-shard-{s}",
                daemon=True,
            )
            for s in range(self.options.num_shards)
        ]
        for t in self._threads:
            t.start()
        self._started = True
        return self

    def stop(self) -> None:
        """Stop dispatchers after their queues empty; keeps warm runtimes."""
        if self._started:
            self._stop.set()
            for cond in self._conds:
                with cond:
                    cond.notify_all()
            for t in self._threads:
                t.join(timeout=60.0)
            self._threads = []
            self._started = False

    def close(self) -> None:
        self.stop()
        if self._pools is not None:
            for pool in self._pools:
                with suppress(Exception):
                    pool.shutdown(wait=True)
            self._pools = None
        if self._arena is not None:
            self._arena.close()
            self._arena = None

    def __enter__(self) -> "CollisionSolveService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def drain(self) -> int:
        """Synchronously execute every queued job, in submission order.

        Deterministic by construction: batch composition depends only on
        the submission sequence, so reruns with the same jobs produce
        bitwise-identical results.  Only valid while dispatchers are not
        running.  Returns the number of jobs executed."""
        if self._started:
            raise RuntimeError("drain() requires a stopped service")
        done = 0
        for shard in range(self.options.num_shards):
            q = self._queues[shard]
            while q:
                with self._conds[shard]:
                    batch = self._take_batch(shard, q.popleft())
                self._execute(shard, batch)
                done += len(batch)
        return done

    # ------------------------------------------------------------------
    # observability
    def shard_snapshots(self) -> list[dict]:
        if self._pools is not None:
            snaps = []
            for s, pool in enumerate(self._pools):
                try:
                    snaps.append(pool.submit(_process_snapshot).result())
                except BrokenProcessPool:
                    self._restart_worker(s)
                    snaps.append(
                        self._pools[s].submit(_process_snapshot).result()
                    )
        else:
            assert self._workers is not None
            snaps = [w.snapshot() for w in self._workers]
        for s, snap in enumerate(snaps):
            snap["rejected_submissions"] = self._rejected[s]
            snap["max_queue_depth"] = max(
                snap.get("max_queue_depth", 0), self._max_depth[s]
            )
            # worker-side counters reset with the process; the parent's
            # restart count is authoritative and additive
            snap["worker_restarts"] = (
                snap.get("worker_restarts", 0) + self._restarts[s]
            )
        return snaps

    def snapshot(self) -> dict:
        """Service-level rollup (JSON-able; see report.serve_summary)."""
        shards = self.shard_snapshots()
        total_jobs = sum(
            s["jobs_ok"] + s["jobs_failed"] + s["jobs_shed"] for s in shards
        )
        caches = [s["plan_cache"] for s in shards]
        hits = sum(c["hits"] for c in caches)
        misses = sum(c["misses"] for c in caches)
        solver_keys = shards[0]["solver"].keys() if shards else ()
        solver_tot = {
            k: sum(s["solver"][k] for s in shards)
            for k in solver_keys
            if k != "launch_reduction"
        }
        launches = solver_tot.get("field_launches", 0)
        solver_tot["launch_reduction"] = (
            solver_tot.get("equivalent_unbatched_launches", 0) / launches
            if launches
            else 0.0
        )
        return {
            "options": {
                "num_shards": self.options.num_shards,
                "max_batch": self.options.max_batch,
                "max_wait_ms": self.options.max_wait_ms,
                "queue_bound": self.options.queue_bound,
                "executor": self.options.executor,
            },
            "jobs": {
                "total": total_jobs,
                "ok": sum(s["jobs_ok"] for s in shards),
                "failed": sum(s["jobs_failed"] for s in shards),
                "shed": sum(s["jobs_shed"] for s in shards),
                "retried": sum(s["jobs_retried"] for s in shards),
                "rejected_submissions": sum(
                    s["rejected_submissions"] for s in shards
                ),
                "worker_restarts": sum(
                    s.get("worker_restarts", 0) for s in shards
                ),
            },
            "batch_size_hist": merge_histograms(
                [s["batch_size_hist"] for s in shards]
            ),
            "plan_cache": {
                "plans": sum(c["plans"] for c in caches),
                "bytes": sum(c["bytes"] for c in caches),
                "hits": hits,
                "misses": misses,
                "evictions": sum(c["evictions"] for c in caches),
                "hit_rate": hits / max(1, hits + misses),
            },
            "solver": solver_tot,
            "shards": shards,
        }
