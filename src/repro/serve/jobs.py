"""Solve jobs, results and completion handles.

A :class:`SolveJob` is one per-vertex collision solve request: the shared
:class:`~repro.serve.plan.SolvePlan` plus this vertex's ``(S, ndofs)``
state and an optional deadline.  The service answers every admitted job
with exactly one :class:`JobResult` — solved, shed (deadline passed while
queued) or failed (the retry/backoff budget ran out) — delivered through
a :class:`JobHandle`.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from .plan import SolvePlan

__all__ = ["SolveJob", "JobResult", "JobHandle"]

_job_counter = itertools.count()

#: result states: exactly one per admitted job
STATUS_OK = "ok"
STATUS_SHED = "shed"
STATUS_FAILED = "failed"


@dataclass
class SolveJob:
    """One per-vertex collision solve request."""

    plan: SolvePlan
    state: np.ndarray
    job_id: str = ""
    deadline: float | None = None  # absolute time.monotonic() seconds
    submitted: float = field(default_factory=time.monotonic)
    #: caller-defined grouping label (e.g. an ensemble campaign/member id);
    #: never shipped to workers — accounted parent-side per outcome.
    tag: str = ""

    def __post_init__(self):
        self.state = np.asarray(self.state, dtype=float)
        S = len(self.plan.species)
        if self.state.ndim == 1 and S == 1:
            self.state = self.state[None, :]
        if self.state.shape != (S, self.plan.fs.ndofs):
            raise ValueError(
                f"state must be ({S}, {self.plan.fs.ndofs}), "
                f"got {self.state.shape}"
            )
        if not self.job_id:
            self.job_id = f"job-{next(_job_counter)}"

    @classmethod
    def with_deadline_ms(cls, plan: SolvePlan, state, deadline_ms: float, **kw):
        """Build a job that is shed unless dispatched within ``deadline_ms``."""
        return cls(
            plan=plan,
            state=state,
            deadline=time.monotonic() + deadline_ms / 1e3,
            **kw,
        )

    def expired(self, now: float | None = None) -> bool:
        if self.deadline is None:
            return False
        return (time.monotonic() if now is None else now) > self.deadline


@dataclass
class JobResult:
    """Terminal outcome of one job (exactly one per admitted job)."""

    job_id: str
    status: str  # "ok" | "shed" | "failed"
    state: np.ndarray | None = None
    error: str | None = None
    shard: int = -1
    batch_size: int = 0
    sweeps: int = 0
    retried: bool = False
    latency_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


class JobHandle:
    """Future-like completion handle; the result is set exactly once."""

    def __init__(self, job: SolveJob):
        self.job = job
        self._event = threading.Event()
        self._result: JobResult | None = None

    def set_result(self, result: JobResult) -> None:
        if self._event.is_set():  # the no-job-executed-twice invariant
            raise RuntimeError(
                f"result for {self.job.job_id} delivered twice"
            )
        self._result = result
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> JobResult:
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"job {self.job.job_id} not completed within {timeout}s"
            )
        assert self._result is not None
        return self._result
