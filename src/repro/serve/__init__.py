"""Collision solve service: micro-batching, sharding, and plan caching.

The serving layer for per-vertex Landau collision solves.  Callers build
a :class:`SolvePlan` (mesh + species + dt + solver/assembly options) and
submit per-vertex states; the service coalesces jobs sharing a plan into
micro-batches for the :class:`~repro.core.batch.BatchedVertexSolver`,
routes plans to shards by consistent hashing so warm operators (pair
tables, scatter structure, band symbolics) are reused, sheds
deadline-expired jobs, rejects submissions under overload
(:class:`~repro.resilience.ServiceOverloaded`), and routes jobs that fall
out of a batch through the resilience retry/backoff path.

Quick start::

    from repro.serve import CollisionSolveService, ServeOptions, SolvePlan

    plan = SolvePlan(fs=fs, species=species, dt=2e-3)
    with CollisionSolveService(ServeOptions(num_shards=2)) as svc:
        results = svc.solve_many(plan, states)   # deterministic drain mode
        # or: svc.start(); handles = [svc.submit(plan, s) for s in states]
"""

from .checkpoint import (
    PendingJob,
    ServiceCheckpoint,
    checkpoint_path,
    load_service_checkpoint,
    save_service_checkpoint,
)
from .jobs import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SHED,
    JobHandle,
    JobResult,
    SolveJob,
)
from .metrics import LatencyRing, ShardMetrics, merge_histograms, percentile
from .plan import PlanCache, PlanRuntime, SolvePlan
from .service import CollisionSolveService, HashRing, ServeOptions
from .shard import ShardWorker, execute_jobs

__all__ = [
    "PendingJob",
    "ServiceCheckpoint",
    "checkpoint_path",
    "load_service_checkpoint",
    "save_service_checkpoint",
    "SolvePlan",
    "PlanRuntime",
    "PlanCache",
    "SolveJob",
    "JobResult",
    "JobHandle",
    "STATUS_OK",
    "STATUS_SHED",
    "STATUS_FAILED",
    "ShardWorker",
    "execute_jobs",
    "ShardMetrics",
    "LatencyRing",
    "percentile",
    "merge_histograms",
    "HashRing",
    "CollisionSolveService",
    "ServeOptions",
]
