"""Per-shard and service-level metrics for the collision solve service.

Everything an operator needs to size the service lives here: queue depth
(admission headroom), the batch-size histogram (is the micro-batcher
actually coalescing?), launch reduction (the paper's batching win),
latency percentiles (the tail users see), and the plan-cache counters
(are pair tables/band symbolics being rebuilt?).  Snapshots are plain
JSON-able dicts — :func:`repro.report.serve_summary` renders them and
``benchmarks/bench_serve.py`` dumps them into ``BENCH_serve.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["LatencyRing", "ShardMetrics", "percentile"]


def percentile(sorted_values: list, p: float) -> float:
    """Linear-interpolation percentile of an already sorted list."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    rank = (p / 100.0) * (len(sorted_values) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = rank - lo
    return float(sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac)


class LatencyRing:
    """Bounded ring of latency samples (seconds); long-running services
    keep the most recent ``maxlen`` and count the evicted ones."""

    def __init__(self, maxlen: int = 4096):
        self.maxlen = int(maxlen)
        self._samples: list[float] = []
        self.dropped = 0

    def add(self, seconds: float) -> None:
        self._samples.append(float(seconds))
        excess = len(self._samples) - self.maxlen
        if excess > 0:
            del self._samples[:excess]
            self.dropped += excess

    def __len__(self) -> int:
        return len(self._samples)

    def percentiles(self, ps=(50.0, 99.0)) -> dict:
        ordered = sorted(self._samples)
        return {f"p{int(p)}_ms": percentile(ordered, p) * 1e3 for p in ps}


@dataclass
class ShardMetrics:
    """Work and latency accounting for one shard."""

    shard: int = 0
    jobs_ok: int = 0
    jobs_failed: int = 0
    jobs_shed: int = 0
    jobs_retried: int = 0
    rejected_submissions: int = 0
    batches: int = 0
    batch_size_hist: dict = field(default_factory=dict)
    max_queue_depth: int = 0
    #: times this shard's worker process died and was re-initialized
    #: (thread-mode shards never restart; the service adds its parent-side
    #: count for process-mode shards, whose in-worker counters reset)
    worker_restarts: int = 0
    # ---- failure taxonomy (ISSUE-7) -------------------------------------
    #: solver faults fired by the (plan-driven or ad-hoc) injector
    injected_faults: int = 0
    #: worker process deaths observed as BrokenProcessPool
    worker_crashes: int = 0
    #: hung workers killed by the supervisor (deadline or heartbeat)
    worker_hangs: int = 0
    #: per-batch deadlines that expired on the process tier
    deadline_timeouts: int = 0
    #: circuit-breaker closed->open transitions for this shard
    breaker_trips: int = 0
    #: batches served by the degraded in-parent tier while the breaker
    #: was open (or after repeated worker deaths on one batch)
    degraded_batches: int = 0
    #: shared-memory attach failures retried with inline payloads
    shm_attach_faults: int = 0
    latency: LatencyRing = field(default_factory=LatencyRing)

    def record_batch(self, size: int) -> None:
        self.batches += 1
        self.batch_size_hist[size] = self.batch_size_hist.get(size, 0) + 1

    def record_queue_depth(self, depth: int) -> None:
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth

    @property
    def jobs_done(self) -> int:
        return self.jobs_ok + self.jobs_failed + self.jobs_shed

    def snapshot(self) -> dict:
        return {
            "shard": self.shard,
            "jobs_ok": self.jobs_ok,
            "jobs_failed": self.jobs_failed,
            "jobs_shed": self.jobs_shed,
            "jobs_retried": self.jobs_retried,
            "rejected_submissions": self.rejected_submissions,
            "batches": self.batches,
            "batch_size_hist": {
                str(k): v for k, v in sorted(self.batch_size_hist.items())
            },
            "max_queue_depth": self.max_queue_depth,
            "worker_restarts": self.worker_restarts,
            "injected_faults": self.injected_faults,
            "worker_crashes": self.worker_crashes,
            "worker_hangs": self.worker_hangs,
            "deadline_timeouts": self.deadline_timeouts,
            "breaker_trips": self.breaker_trips,
            "degraded_batches": self.degraded_batches,
            "shm_attach_faults": self.shm_attach_faults,
            "latency": self.latency.percentiles() | {"samples": len(self.latency)},
        }


def merge_histograms(hists: list[dict]) -> dict:
    out: dict = {}
    for h in hists:
        for k, v in h.items():
            out[k] = out.get(k, 0) + v
    return {str(k): out[k] for k in sorted(out, key=lambda s: int(s))}
