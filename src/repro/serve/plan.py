"""Solve plans and the operator-plan cache.

A *plan* is everything about a collision solve that is shareable between
jobs: the velocity mesh / function space, the species set, the time step
and the solver/assembly configuration.  Jobs carrying the same plan can be
micro-batched into one :class:`~repro.core.batch.BatchedVertexSolver`
sweep and served by the same warm :class:`~repro.core.operator.LandauOperator`
(pair tables, scatter structure) and
:class:`~repro.sparse.band.CachedBandSolverFactory` (RCM ordering, band
symbolics) — building those is the expensive part of a solve, so the
service caches one *runtime* per plan per shard, with LRU eviction under a
byte budget (the pair tables dominate, so the budget is expressed through
the existing :class:`~repro.core.options.AssemblyOptions` memory-budget
machinery).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field, replace

import numpy as np

from ..core.batch import BatchedVertexSolver
from ..core.options import AssemblyOptions
from ..core.species import SpeciesSet
from ..fem.function_space import FunctionSpace

__all__ = ["SolvePlan", "PlanRuntime", "PlanCache"]

#: set by the process-executor worker initializer (``shard._process_init``).
#: Inside a shard worker the ``process`` backend is clamped to
#: ``threaded``: a nested ProcessPoolExecutor created in a pool worker
#: completes its work but deadlocks the worker's interpreter shutdown
#: (the grandchildren's manager threads never join), and shard-per-process
#: already *is* the process-level parallelism.  ``threaded`` produces
#: identical results (both executors run the same disjoint-block kernels).
IN_PROCESS_WORKER = False


def _space_fingerprint(fs: FunctionSpace) -> str:
    """Stable digest of the discretization: quadrature geometry plus the
    constraint operator (two spaces with identical quadrature but
    different hanging-node constraints must not share a plan)."""
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(fs.qpoints).tobytes())
    h.update(np.ascontiguousarray(fs.qweights).tobytes())
    P = fs.dofmap.P.tocsr()
    h.update(P.indptr.tobytes())
    h.update(P.indices.tobytes())
    h.update(P.data.tobytes())
    h.update(f"{fs.ndofs}:{fs.dofmap.n_full}".encode())
    return h.hexdigest()


@dataclass(frozen=True)
class SolvePlan:
    """The shareable part of a solve request.

    Two plans with equal :attr:`key` are interchangeable: their jobs can
    ride in one batch and reuse one warm operator runtime.  Equality and
    hashing go through the key, so distinct ``SolvePlan`` instances built
    from the same space/species/options coalesce in the cache.
    """

    fs: FunctionSpace
    species: SpeciesSet
    dt: float
    nu0: float = 1.0
    rtol: float = 1e-9
    max_newton: int = 50
    accel_m: int = 2
    options: AssemblyOptions = field(default_factory=AssemblyOptions.from_env)

    def __post_init__(self):
        if self.dt <= 0:
            raise ValueError(f"dt must be positive, got {self.dt}")
        if self.rtol <= 0:
            raise ValueError(f"rtol must be positive, got {self.rtol}")

    @property
    def key(self) -> str:
        """Hex digest identifying the plan (stable across processes)."""
        cached = self.__dict__.get("_key")
        if cached is None:
            h = hashlib.sha256()
            h.update(_space_fingerprint(self.fs).encode())
            for s in self.species:
                h.update(f"{s.charge!r}:{s.mass!r}".encode())
            h.update(
                f"{float(self.dt).hex()}"
                f":{float(self.nu0).hex()}:{float(self.rtol).hex()}"
                f":{self.max_newton}:{self.accel_m}".encode()
            )
            opt = self.options
            # the *resolved* backend name is part of the plan identity:
            # shards must never batch jobs expecting different backends,
            # and "auto" must coalesce with its concrete resolution
            h.update(
                f"{opt.cache_structure}:{opt.packed_tables}:{opt.num_threads}"
                f":{opt.table_dtype}:{opt.memory_budget}"
                f":{opt.cache_pair_tables}:{opt.resolved_backend()}".encode()
            )
            cached = h.hexdigest()
            object.__setattr__(self, "_key", cached)
        return cached

    def __hash__(self) -> int:
        return hash(self.key)

    def __eq__(self, other) -> bool:
        if not isinstance(other, SolvePlan):
            return NotImplemented
        return self.key == other.key

    def describe(self) -> dict:
        """JSON-able summary (for metrics/events)."""
        return {
            "key": self.key[:12],
            "ndofs": int(self.fs.ndofs),
            "species": len(self.species),
            "dt": float(self.dt),
            "rtol": float(self.rtol),
        }


class PlanRuntime:
    """Warm per-plan solver state: the batched vertex solver (which owns
    the :class:`LandauOperator` with its pair tables / scatter structure
    and the shared band-symbolic factory) plus a lazily built retry
    integrator for jobs that fall out of a batch."""

    def __init__(self, plan: SolvePlan, clamp_process: bool | None = None):
        # clamp_process=True forces backend "process" -> "threaded" even
        # outside a shard worker: the service's *degraded* tier runs
        # batches in the parent while the process tier is suspect, and
        # must not spin up the very pools it is standing in for.
        # None defers to the worker-global flag (the PR-6 behavior).
        if clamp_process is None:
            clamp_process = IN_PROCESS_WORKER
        self.plan = plan
        options = plan.options
        if clamp_process or IN_PROCESS_WORKER:
            # options=None would re-read REPRO_BACKEND from the env in
            # the operator, so resolve here before clamping
            if options is None:
                options = AssemblyOptions.from_env()
            if options.resolved_backend() == "process":
                options = replace(options, backend="threaded")
        self.solver = BatchedVertexSolver(
            plan.fs,
            plan.species,
            nu0=plan.nu0,
            rtol=plan.rtol,
            max_newton=plan.max_newton,
            accel_m=plan.accel_m,
            options=options,
        )
        self._retry_solver = None
        #: compile cost hoisted at construction (0.0 for interpreted
        #: backends whose warmup is a no-op)
        self.warmup_s = self.warmup()

    @property
    def op(self):
        return self.solver.op

    def warmup(self) -> float:
        """Hoist backend one-time costs (numba JIT compilation) out of
        the solve path; idempotent.  Returns the seconds spent, 0.0 when
        the backend was already warm."""
        return float(self.op.backend.warmup())

    def retry_solver(self):
        """A per-vertex implicit solver sharing the warm operator, for the
        resilience retry/backoff path (built on first use)."""
        from ..core.solver import ImplicitLandauSolver

        if self._retry_solver is None:
            self._retry_solver = ImplicitLandauSolver(
                self.op, rtol=self.plan.rtol, max_newton=self.plan.max_newton
            )
        return self._retry_solver

    @property
    def bytes(self) -> int:
        """Resident-size estimate: the pair tables dominate; the band
        symbolics and scatter structure add a CSR-sized tail."""
        op = self.op
        size = op.options.table_bytes(op.N) if op.pair_tables_cached else 0
        sm = op.scatter_map
        if sm is not None:
            size += int(sm.T.data.nbytes + sm.T.indices.nbytes + sm.T.indptr.nbytes)
        return size


class PlanCache:
    """LRU cache of :class:`PlanRuntime` under a byte budget.

    One instance lives in every shard worker, so each shard keeps its own
    warm operators (pair tables, band symbolics) for the plans routed to
    it by consistent hashing.  Counters feed the serve metrics.
    """

    def __init__(self, budget: int | None = None, clamp_process: bool = False):
        if budget is None:
            budget = AssemblyOptions.from_env().memory_budget
        if budget <= 0:
            raise ValueError(f"budget must be positive, got {budget}")
        self.budget = int(budget)
        self.clamp_process = bool(clamp_process)
        self._entries: OrderedDict[str, PlanRuntime] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def bytes(self) -> int:
        return sum(rt.bytes for rt in self._entries.values())

    def runtimes(self):
        return list(self._entries.values())

    def get(self, plan: SolvePlan) -> PlanRuntime:
        rt = self._entries.get(plan.key)
        if rt is not None:
            self.hits += 1
            self._entries.move_to_end(plan.key)
            return rt
        self.misses += 1
        rt = PlanRuntime(plan, clamp_process=self.clamp_process or None)
        self._entries[plan.key] = rt
        # evict least-recently-used plans until back under budget — but
        # never the runtime just built (a single over-budget plan must
        # still be servable)
        while self.bytes > self.budget and len(self._entries) > 1:
            evicted_key, _ = self._entries.popitem(last=False)
            if evicted_key == plan.key:  # pragma: no cover - defensive
                self._entries[plan.key] = rt
                break
            self.evictions += 1
        return rt

    def counters(self) -> dict:
        return {
            "plans": len(self._entries),
            "bytes": self.bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hits / max(1, self.hits + self.misses),
        }
