"""Refinement criteria for Landau velocity-space meshes (section III-B).

The solver provides "a high-level parameterization of mesh adaptivity ... to
generate grids for Maxwellian distributions": each species with (code-unit)
thermal velocity ``v_s`` needs cells of size ``~ v_s * h_factor`` within a
disc of radius ``~ radius_factor * v_s`` around the origin, which resolves
its Maxwellian; far from every thermal radius the grid can stay coarse.
This concentrates refinement toward the origin for heavy/cold species
(deuterium, tungsten) sharing an electron-scale domain — the mechanism
behind the Table I grid-count economics.
"""

from __future__ import annotations

import math

from .quadtree import QuadForest, Quadrant

#: default disc radius around the origin for the *fastest* species, in units
#: of its v_th — generous so the bulk Maxwellian is well resolved (Fig. 3's
#: 20-cell single-species grid).
DEFAULT_RADIUS_FACTOR = 1.75
#: disc radius for every slower species: just enough to resolve its core.
#: 1.0 reproduces the paper's ~74-cell electron+tungsten shared grid.
DEFAULT_TAIL_RADIUS_FACTOR = 1.0
#: default target cell size, in units of each species' v_th
DEFAULT_H_FACTOR = 1.25
#: extra core tier: cells within ``CORE_RADIUS_FACTOR * v_th`` of the origin
#: are refined one level deeper (to ``CORE_H_FACTOR * v_th``) — this is what
#: produces the paper's 20-cell single-species grid from the 14-cell shell.
DEFAULT_CORE_RADIUS_FACTOR = 0.3
DEFAULT_CORE_H_FACTOR = 0.7


def _disc_distance(forest: QuadForest, q: Quadrant) -> float:
    """Distance from the origin ``(r=0, z=0)`` to the closest point of ``q``."""
    x0, y0, x1, y1 = forest.quadrant_bounds(q)
    dx = max(x0, 0.0, -x1)  # r >= 0 always; distance in r
    dy = max(y0 - 0.0, 0.0, -y1)
    # clamp origin into the box per axis
    cx = min(max(0.0, x0), x1)
    cy = min(max(0.0, y0), y1)
    return math.hypot(cx - 0.0, cy - 0.0)


def maxwellian_refine(
    forest: QuadForest,
    thermal_velocities: list[float],
    radius_factor: float = DEFAULT_RADIUS_FACTOR,
    tail_radius_factor: float = DEFAULT_TAIL_RADIUS_FACTOR,
    h_factor: float = DEFAULT_H_FACTOR,
    core_radius_factor: float = DEFAULT_CORE_RADIUS_FACTOR,
    core_h_factor: float = DEFAULT_CORE_H_FACTOR,
    max_level: int | None = None,
) -> int:
    """Refine ``forest`` to resolve a Maxwellian for each thermal velocity.

    A leaf is refined while some species' disc ``|v| <= rf*v_s`` intersects
    it and its cell size exceeds ``h_factor * v_s``, where ``rf`` is
    ``radius_factor`` for the fastest species (whose Maxwellian fills the
    domain) and ``tail_radius_factor`` for every slower species (which only
    needs its core resolved near the origin).

    Returns the number of refinement operations (excluding balancing).
    """
    if not thermal_velocities:
        raise ValueError("need at least one thermal velocity")
    if any(v <= 0 for v in thermal_velocities):
        raise ValueError(f"thermal velocities must be positive: {thermal_velocities}")

    vs = sorted(set(thermal_velocities), reverse=True)
    vmax = vs[0]

    def predicate(f: QuadForest, q: Quadrant) -> bool:
        x0, y0, x1, y1 = f.quadrant_bounds(q)
        h = max(x1 - x0, y1 - y0)
        d = _disc_distance(f, q)
        for v in vs:
            rf = radius_factor if v == vmax else tail_radius_factor
            # the 1e-9 guard keeps the decision deterministic when h lands
            # exactly on the target (fp noise in y1-y0 otherwise refines
            # some cells of a symmetric shell and not others)
            if d <= rf * v and h > h_factor * v * (1.0 + 1e-9):
                return True
            if d <= core_radius_factor * v and h > core_h_factor * v * (1.0 + 1e-9):
                return True
        return False

    nref = forest.refine(predicate, max_level=max_level)
    forest.balance()
    return nref


def thermal_radius_levels(
    domain_size: float,
    thermal_velocity: float,
    h_factor: float = DEFAULT_H_FACTOR,
    trees: int = 1,
) -> int:
    """Quadtree level needed so cells near the origin resolve ``v_th``.

    ``h(level) = domain_size / (trees * 2^level) <= h_factor * v_th``.
    """
    if thermal_velocity <= 0 or domain_size <= 0:
        raise ValueError("domain size and thermal velocity must be positive")
    target = h_factor * thermal_velocity
    level = 0
    h = domain_size / trees
    while h > target and level < QuadForest.MAX_LEVEL:
        h *= 0.5
        level += 1
    return level
