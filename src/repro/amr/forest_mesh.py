"""Convert balanced quadforests into FEM meshes; the one-call Landau mesh.

``landau_mesh`` is the reproduction of the solver's command-line mesh
parameterization: given the species' thermal velocities it builds the
``[0, L] x [-L, L]`` domain (``L`` = ``domain_factor`` fastest thermal
velocities, five in the paper), refines toward the origin until every
species' Maxwellian is resolved, 2:1-balances, and returns the
non-conforming :class:`repro.fem.Mesh`.
"""

from __future__ import annotations

from ..fem.mesh import Mesh
from .criteria import (
    DEFAULT_CORE_H_FACTOR,
    DEFAULT_CORE_RADIUS_FACTOR,
    DEFAULT_H_FACTOR,
    DEFAULT_RADIUS_FACTOR,
    DEFAULT_TAIL_RADIUS_FACTOR,
    maxwellian_refine,
)
from .quadtree import QuadForest

#: the paper's "typical domain size of five thermal velocity units"
DEFAULT_DOMAIN_FACTOR = 5.0


def forest_to_mesh(forest: QuadForest) -> Mesh:
    """Export the forest's leaves as a (possibly non-conforming) Mesh."""
    lower, size = forest.to_arrays()
    return Mesh(lower, size)


def landau_mesh(
    thermal_velocities: list[float],
    domain_factor: float = DEFAULT_DOMAIN_FACTOR,
    radius_factor: float = DEFAULT_RADIUS_FACTOR,
    tail_radius_factor: float = DEFAULT_TAIL_RADIUS_FACTOR,
    h_factor: float = DEFAULT_H_FACTOR,
    core_radius_factor: float = DEFAULT_CORE_RADIUS_FACTOR,
    core_h_factor: float = DEFAULT_CORE_H_FACTOR,
    base_level: int = 0,
    max_level: int | None = None,
) -> Mesh:
    """Build an AMR velocity-space mesh resolving every species' Maxwellian.

    The domain is ``[0, L] x [-L, L]`` with ``L = domain_factor * max(v_th)``,
    tiled by a 1x2 macro grid of square root trees so every cell is square.

    Parameters
    ----------
    thermal_velocities:
        per-species thermal speeds in code (v0) units.
    domain_factor:
        domain half-size in units of the largest thermal velocity (paper: 5).
    radius_factor, h_factor:
        refinement aggressiveness, see :func:`repro.amr.maxwellian_refine`.
    base_level:
        uniform refinement of each root tree before adaptation.
    max_level:
        optional cap on quadtree depth.
    """
    if not thermal_velocities:
        raise ValueError("need at least one thermal velocity")
    L = domain_factor * max(thermal_velocities)
    forest = QuadForest(
        0.0, L, -L, L, trees_x=1, trees_y=2, base_level=base_level
    )
    maxwellian_refine(
        forest,
        thermal_velocities,
        radius_factor=radius_factor,
        tail_radius_factor=tail_radius_factor,
        h_factor=h_factor,
        core_radius_factor=core_radius_factor,
        core_h_factor=core_h_factor,
        max_level=max_level,
    )
    return forest_to_mesh(forest)
