"""Forest of quadtrees over a rectangular root domain (p4est stand-in).

As in p4est, the domain is tiled by a macro grid of ``trees_x x trees_y``
square root trees, each recursively subdivided.  Quadrants are addressed by
``(level, i, j)`` *global* integer coordinates: at level ``l`` the forest is
a ``(trees_x * 2^l) x (trees_y * 2^l)`` grid and quadrant ``(l, i, j)``
covers cell ``[i, i+1] x [j, j+1]`` of that grid.  Integer coordinates keep
all geometry exact, so the non-conforming meshes handed to the FEM layer
have bit-exact shared edges — the node deduplication in
:class:`repro.fem.DofMap` relies on this.

The forest supports recursive refinement by a user predicate and 2:1 edge
balancing (``p4est_balance``), which is what the Landau solver needs from
p4est.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Quadrant:
    """A leaf quadrant ``(level, i, j)`` in global integer coordinates."""

    level: int
    i: int
    j: int

    def children(self) -> list["Quadrant"]:
        l, i, j = self.level + 1, 2 * self.i, 2 * self.j
        return [
            Quadrant(l, i, j),
            Quadrant(l, i + 1, j),
            Quadrant(l, i, j + 1),
            Quadrant(l, i + 1, j + 1),
        ]

    def parent(self) -> "Quadrant":
        if self.level == 0:
            raise ValueError("level-0 quadrant has no parent")
        return Quadrant(self.level - 1, self.i // 2, self.j // 2)


class QuadForest:
    """Forest of square quadtrees over ``[x0, x1] x [y0, y1]``.

    Parameters
    ----------
    x0, x1, y0, y1:
        physical extent; ``(x1-x0)/trees_x`` must equal ``(y1-y0)/trees_y``
        for square cells (not enforced, but the Landau meshes use it).
    trees_x, trees_y:
        macro-grid dimensions (p4est's root trees).
    base_level:
        initial uniform refinement of every tree.
    """

    MAX_LEVEL = 24

    def __init__(
        self,
        x0: float,
        x1: float,
        y0: float,
        y1: float,
        trees_x: int = 1,
        trees_y: int = 1,
        base_level: int = 0,
    ):
        if x1 <= x0 or y1 <= y0:
            raise ValueError("degenerate root domain")
        if trees_x < 1 or trees_y < 1:
            raise ValueError("need at least one tree per direction")
        if not (0 <= base_level <= self.MAX_LEVEL):
            raise ValueError(f"base_level out of range: {base_level}")
        self.x0, self.x1, self.y0, self.y1 = float(x0), float(x1), float(y0), float(y1)
        self.trees_x, self.trees_y = trees_x, trees_y
        nx = trees_x << base_level
        ny = trees_y << base_level
        self.leaves: set[Quadrant] = {
            Quadrant(base_level, i, j) for i in range(nx) for j in range(ny)
        }

    # --- geometry ---------------------------------------------------------------
    def _cell_size(self, level: int) -> tuple[float, float]:
        return (
            (self.x1 - self.x0) / (self.trees_x << level),
            (self.y1 - self.y0) / (self.trees_y << level),
        )

    def quadrant_bounds(self, q: Quadrant) -> tuple[float, float, float, float]:
        """Physical ``(x0, y0, x1, y1)`` of a quadrant."""
        hx, hy = self._cell_size(q.level)
        return (
            self.x0 + q.i * hx,
            self.y0 + q.j * hy,
            self.x0 + (q.i + 1) * hx,
            self.y0 + (q.j + 1) * hy,
        )

    def quadrant_center(self, q: Quadrant) -> tuple[float, float]:
        b = self.quadrant_bounds(q)
        return (0.5 * (b[0] + b[2]), 0.5 * (b[1] + b[3]))

    @property
    def nleaves(self) -> int:
        return len(self.leaves)

    @property
    def max_level(self) -> int:
        return max((q.level for q in self.leaves), default=0)

    # --- refinement --------------------------------------------------------------
    def refine(self, predicate, max_level: int | None = None) -> int:
        """Recursively refine leaves while ``predicate(forest, quadrant)`` holds.

        Returns the number of refinement operations.  ``max_level`` caps the
        depth (default :data:`MAX_LEVEL`).
        """
        cap = self.MAX_LEVEL if max_level is None else max_level
        nref = 0
        work = list(self.leaves)
        while work:
            q = work.pop()
            if q not in self.leaves or q.level >= cap:
                continue
            if predicate(self, q):
                self.leaves.remove(q)
                kids = q.children()
                self.leaves.update(kids)
                work.extend(kids)
                nref += 1
        return nref

    def refine_once(self, quads: list[Quadrant]) -> None:
        """Refine an explicit list of leaves one level."""
        for q in quads:
            if q not in self.leaves:
                raise ValueError(f"{q} is not a leaf")
            self.leaves.remove(q)
            self.leaves.update(q.children())

    # --- 2:1 balance ---------------------------------------------------------------
    @staticmethod
    def _edge_adjacent(fine: Quadrant, coarse: Quadrant) -> bool:
        """True if the two quadrants share (part of) an edge; fine.level > coarse.level."""
        dl = fine.level - coarse.level
        scale = 1 << dl
        ci0, cj0 = coarse.i * scale, coarse.j * scale
        ci1, cj1 = ci0 + scale, cj0 + scale
        touch_x = fine.i + 1 == ci0 or ci1 == fine.i
        touch_y = fine.j + 1 == cj0 or cj1 == fine.j
        overlap_x = ci0 < fine.i + 1 and fine.i < ci1
        overlap_y = cj0 < fine.j + 1 and fine.j < cj1
        return (touch_x and overlap_y) or (touch_y and overlap_x)

    def _violations(self) -> set[Quadrant]:
        """Leaves that must be refined to restore 2:1 edge balance."""
        leaves = sorted(self.leaves, key=lambda q: q.level)
        bad: set[Quadrant] = set()
        # O(n^2) pair scan — forests here are a few hundred leaves.
        for a in leaves:
            for b in leaves:
                if b.level - a.level >= 2 and self._edge_adjacent(b, a):
                    bad.add(a)
                    break
        return bad

    def balance(self) -> int:
        """Enforce 2:1 edge balance.  Returns the number of refinements."""
        nref = 0
        while True:
            bad = self._violations()
            if not bad:
                return nref
            self.refine_once(list(bad))
            nref += len(bad)

    def is_balanced(self) -> bool:
        return not self._violations()

    # --- export -------------------------------------------------------------------
    def to_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """``(lower, size)`` arrays for :class:`repro.fem.Mesh`, deterministically
        ordered (level, j, i)."""
        quads = sorted(self.leaves, key=lambda q: (q.level, q.j, q.i))
        lower = np.empty((len(quads), 2))
        size = np.empty((len(quads), 2))
        for k, q in enumerate(quads):
            b = self.quadrant_bounds(q)
            lower[k] = (b[0], b[1])
            size[k] = (b[2] - b[0], b[3] - b[1])
        return lower, size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuadForest(nleaves={self.nleaves}, max_level={self.max_level}, "
            f"domain=[{self.x0},{self.x1}]x[{self.y0},{self.y1}], "
            f"trees={self.trees_x}x{self.trees_y})"
        )
