"""Adaptive mesh refinement: a forest-of-quadtrees in the spirit of p4est.

The Landau solver parameterizes mesh adaptivity at a high level (section
III-B): refine the velocity-space grid so that each species' (near-)
Maxwellian is resolved — concentrating cells near the origin for heavy/cold
species and near each species' thermal radius.  This subpackage provides the
quadtree machinery (refinement, 2:1 balance) and the paper's refinement
criteria, and converts balanced forests into the non-conforming rectangle
meshes consumed by :mod:`repro.fem`.
"""

from .quadtree import Quadrant, QuadForest
from .criteria import maxwellian_refine, thermal_radius_levels
from .forest_mesh import forest_to_mesh, landau_mesh

__all__ = [
    "Quadrant",
    "QuadForest",
    "maxwellian_refine",
    "thermal_radius_levels",
    "forest_to_mesh",
    "landau_mesh",
]
