"""Stochastic quench ensembles + UQ over the serve tier.

Samples :class:`~repro.quench.model.QuenchParameters` scenarios
(Karhunen-Loève Maxwellian perturbations, randomized injection pulses,
impurity mixes, runaway seeds), drives them through the
:class:`~repro.serve.service.CollisionSolveService` as a checkpointed,
fault-tolerant campaign, and reduces the member outputs to
uncertainty-quantified distributions — the Fig. 5 quantities as
distributions instead of one canonical trace.
"""

from .sampling import (
    GaussianRandomField1D,
    QuenchScenario,
    ScenarioDesign,
    member_seed_sequences,
    sample_scenarios,
)
from .campaign import (
    CampaignDriver,
    CampaignOptions,
    MemberResult,
    LEDGER_NAME,
)
from .statistics import (
    EnsembleAccumulator,
    P2Quantile,
    ScalarReservoir,
    StreamingMoments,
    bootstrap_ci,
    oat_sensitivity,
)
from .report import campaign_report, distribution_table, write_campaign_json

__all__ = [
    "GaussianRandomField1D",
    "QuenchScenario",
    "ScenarioDesign",
    "member_seed_sequences",
    "sample_scenarios",
    "CampaignDriver",
    "CampaignOptions",
    "MemberResult",
    "LEDGER_NAME",
    "StreamingMoments",
    "P2Quantile",
    "ScalarReservoir",
    "EnsembleAccumulator",
    "bootstrap_ci",
    "oat_sensitivity",
    "campaign_report",
    "distribution_table",
    "write_campaign_json",
]
