"""Fault-tolerant ensemble campaigns over the serve tier.

A campaign drives every sampled :class:`~repro.ensemble.sampling.QuenchScenario`
through the :class:`~repro.serve.service.CollisionSolveService` as a
sequence of per-member collision-solve jobs, with the cold-plasma pulse
applied as an analytic quasineutral state increment between steps (the
serve tier solves pure collision steps; the pulse is the prescribed
density ramp of :class:`~repro.quench.source.ColdPlasmaSource`, which is
exact in time).  The drive field enters the member diagnostics through
the Connor-Hastie/Dreicer machinery (runaway boundary ``v_c``), and the
post-quench resistivity is the Spitzer value at the member's final
``T_e`` — the Fig. 5 quantities, now as distributions.

Determinism is by construction, not by executor luck:

* members advance in **lock-step rounds**; within a round the active
  members are submitted in canonical ``member_key`` order and executed
  with the service's deterministic :meth:`drain`, so batch composition —
  and therefore every BLAS reduction ordering — depends only on the
  design, never on scenario-list order or the executor type;
* all members share one mesh/function space; members sharing an impurity
  charge share a serve plan, so the warm plan cache is hit across the
  whole campaign.

Fault tolerance reuses the PR 7 machinery rather than reimplementing it:
failed jobs get a bounded per-member retry, and the campaign ledger —
completed member results plus in-progress member states — is written
atomically under the ``RPROCKSUM1`` checksum envelope every round.  A
SIGKILLed campaign re-run with the same design resumes from the ledger
and re-executes only unfinished members (``rerun_overlap == 0``
accounting, as in ``BENCH_chaos.json``).
"""

from __future__ import annotations

import hashlib
import math
import os
import pickle
from dataclasses import dataclass, field

import numpy as np

from ..amr import landau_mesh
from ..core.maxwellian import maxwellian_rz
from ..core.moments import Moments
from ..fem.function_space import FunctionSpace
from ..quench.model import QuenchParameters
from ..quench.runaway import (
    connor_hastie_field_code,
    runaway_critical_velocity_code,
)
from ..quench.source import ColdPlasmaSource
from ..quench.spitzer import spitzer_eta_code
from ..resilience.checkpoint import (
    CheckpointError,
    read_checksummed,
    write_checksummed,
)
from ..serve.plan import SolvePlan
from ..serve.service import CollisionSolveService, ServeOptions
from ..units import DEFAULT_UNITS, UnitSystem
from .sampling import QuenchScenario, ScenarioDesign, sample_scenarios
from .statistics import EnsembleAccumulator, oat_sensitivity

__all__ = [
    "CampaignOptions",
    "CampaignDriver",
    "MemberResult",
    "LEDGER_NAME",
]

LEDGER_NAME = "campaign.ckpt"
LEDGER_VERSION = 1

#: the campaign outputs reduced to distributions
OUTPUTS = ("quench_time", "T_e_final", "eta_post", "runaway_fraction")


@dataclass
class CampaignOptions:
    """Campaign sizing/physics knobs (env overrides: ``REPRO_ENSEMBLE_*``)."""

    name: str = "ensemble"
    dt: float = 0.5
    #: collision steps appended after the member's injection window closes
    post_steps: int = 4
    #: hard cap on per-member steps (bounds campaign wall-clock)
    max_steps: int = 48
    order: int = 2
    mesh_kwargs: dict | None = None
    #: member quench time = first crossing of ``T_e < threshold * T_e(0)``
    quench_threshold: float = 0.5
    #: directory for the campaign ledger; None disables checkpointing
    checkpoint_dir: str | None = None
    checkpoint_every_rounds: int = 1
    #: per-member failed-job resubmission budget
    max_retries: int = 1
    #: runaway-seed boundary in units of the *final* (collapsed-bulk)
    #: electron thermal velocity; the Connor-Hastie ``v_c`` caps it when
    #: the sampled drive approaches the Dreicer field
    seed_velocity_factor: float = 3.0
    #: bounded concurrency: jobs admitted per drain chunk
    max_inflight: int = 64
    rtol: float = 1e-7
    max_newton: int = 50

    def __post_init__(self):
        if not (np.isfinite(self.dt) and self.dt > 0):
            raise ValueError(f"CampaignOptions.dt must be positive, got {self.dt}")
        if self.max_steps < 1:
            raise ValueError(
                f"CampaignOptions.max_steps must be >= 1, got {self.max_steps}"
            )
        if self.post_steps < 0:
            raise ValueError(
                f"CampaignOptions.post_steps must be >= 0, got {self.post_steps}"
            )
        if not (0.0 < self.quench_threshold < 1.0):
            raise ValueError(
                "CampaignOptions.quench_threshold must be in (0, 1), "
                f"got {self.quench_threshold}"
            )
        if self.max_inflight < 1:
            raise ValueError(
                f"CampaignOptions.max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.max_retries < 0:
            raise ValueError(
                f"CampaignOptions.max_retries must be >= 0, got {self.max_retries}"
            )
        if not (np.isfinite(self.seed_velocity_factor) and self.seed_velocity_factor > 0):
            raise ValueError(
                "CampaignOptions.seed_velocity_factor must be positive, "
                f"got {self.seed_velocity_factor}"
            )

    @classmethod
    def from_env(cls, **overrides) -> "CampaignOptions":
        env = os.environ
        kw = dict(
            dt=float(env.get("REPRO_ENSEMBLE_DT", cls.dt)),
            max_steps=int(env.get("REPRO_ENSEMBLE_MAX_STEPS", cls.max_steps)),
            checkpoint_dir=env.get("REPRO_ENSEMBLE_CHECKPOINT_DIR") or None,
            max_inflight=int(
                env.get("REPRO_ENSEMBLE_MAX_INFLIGHT", cls.max_inflight)
            ),
        )
        kw.update(overrides)
        return cls(**kw)


@dataclass
class MemberResult:
    """Terminal record of one ensemble member (JSON-able via ``to_dict``)."""

    index: int
    member_key: str
    status: str  # "ok" | "failed"
    steps: int = 0
    quench_time: float = float("nan")
    T_e_final: float = float("nan")
    n_e_final: float = float("nan")
    eta_post: float = float("nan")
    runaway_fraction: float = float("nan")
    state_sha256: str = ""
    retried_jobs: int = 0
    inputs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "member_key": self.member_key,
            "status": self.status,
            "steps": self.steps,
            "quench_time": self.quench_time,
            "T_e_final": self.T_e_final,
            "n_e_final": self.n_e_final,
            "eta_post": self.eta_post,
            "runaway_fraction": self.runaway_fraction,
            "state_sha256": self.state_sha256,
            "retried_jobs": self.retried_jobs,
            "inputs": dict(self.inputs),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "MemberResult":
        return cls(**d)


class _MemberRun:
    """In-flight state of one member between lock-step rounds."""

    def __init__(self, scenario: QuenchScenario, driver: "CampaignDriver"):
        self.scenario = scenario
        self.key = scenario.member_key
        p = scenario.params
        fs = driver.fs
        self.state = np.stack(
            p.initial_fields(fs, driver.species_for(p.Z))
        )  # (S, ndofs)
        self.t = 0.0
        self.step = 0
        self.retries = 0
        self.retried_jobs = 0
        window = p.injection_start + p.injection_duration
        self.total_steps = min(
            driver.options.max_steps,
            int(math.ceil(window / driver.options.dt)) + driver.options.post_steps,
        )
        # the member's prescribed density ramp (campaign time 0 = quench
        # onset, so t_start is the sampled injection delay directly)
        self.source = ColdPlasmaSource(
            driver.species_for(p.Z),
            total_injected=p.injection_total,
            t_start=p.injection_start,
            duration=p.injection_duration,
            cold_temperature=p.cold_temperature,
        )
        vth_e = math.sqrt(math.pi) / 2.0 * math.sqrt(p.cold_temperature)
        ion = driver.species_for(p.Z)[1]
        vth_i = math.sqrt(math.pi) / 2.0 * math.sqrt(p.cold_temperature / ion.mass)
        # unit-density cold Maxwellian nodal coefficients per species
        self.cold_e = fs.interpolate(lambda r, z: maxwellian_rz(r, z, 1.0, vth_e))
        self.cold_i = fs.interpolate(lambda r, z: maxwellian_rz(r, z, 1.0, vth_i))
        mom = driver.moments_for(p.Z)
        self.T_e0 = mom.species_moments(0, self.state[0]).temperature
        self.trace: list[tuple[float, float]] = [(0.0, self.T_e0)]

    def job_id(self) -> str:
        base = f"{self.key[:12]}:s{self.step}"
        return base if self.retries == 0 else f"{base}:r{self.retries}"

    def apply_injection(self, driver: "CampaignDriver") -> None:
        """Add the pulse's analytic quasineutral increment for the step
        just taken (``injected_by`` is exact, so no rate-quadrature
        drift accumulates)."""
        dn = self.source.injected_by(self.t) - self.source.injected_by(
            self.t - driver.options.dt
        )
        if dn > 0.0:
            Z = self.scenario.params.Z
            self.state[0] = self.state[0] + dn * self.cold_e
            self.state[1] = self.state[1] + (dn / Z) * self.cold_i

    def record(self, driver: "CampaignDriver") -> None:
        mom = driver.moments_for(self.scenario.params.Z)
        T_e = mom.species_moments(0, self.state[0]).temperature
        self.trace.append((self.t, T_e))

    @property
    def done(self) -> bool:
        return self.step >= self.total_steps

    def ledger_entry(self) -> dict:
        return {
            "state": self.state,
            "t": self.t,
            "step": self.step,
            "retries": self.retries,
            "retried_jobs": self.retried_jobs,
            "T_e0": self.T_e0,
            "trace": list(self.trace),
        }

    def restore(self, entry: dict) -> None:
        self.state = np.asarray(entry["state"], dtype=float)
        self.t = float(entry["t"])
        self.step = int(entry["step"])
        self.retries = int(entry["retries"])
        self.retried_jobs = int(entry["retried_jobs"])
        self.T_e0 = float(entry["T_e0"])
        self.trace = [tuple(x) for x in entry["trace"]]


class CampaignDriver:
    """Run a sampled scenario ensemble through the serve tier.

    Parameters
    ----------
    design:
        the :class:`ScenarioDesign` to sample (ignored for sampling when
        ``scenarios`` is given explicitly, but still the ledger identity).
    options:
        campaign knobs; defaults are test-sized.
    service:
        an existing *non-started* :class:`CollisionSolveService`; the
        driver creates a thread-executor one when omitted.  The service
        must stay in deterministic drain mode — a started service's
        dispatcher timing would make batch composition racy.
    scenarios:
        pre-sampled member list (the shuffled-submission regression test
        passes the same members in a different order; results are
        order-independent because rounds submit in canonical
        ``member_key`` order).
    """

    def __init__(
        self,
        design: ScenarioDesign,
        options: CampaignOptions | None = None,
        *,
        units: UnitSystem = DEFAULT_UNITS,
        service: CollisionSolveService | None = None,
        serve_options: ServeOptions | None = None,
        scenarios: list[QuenchScenario] | None = None,
    ):
        self.design = design
        self.options = options or CampaignOptions()
        self.units = units
        self.scenarios = (
            list(scenarios) if scenarios is not None else sample_scenarios(design)
        )
        if len(self.scenarios) != design.members:
            raise ValueError(
                f"scenario count {len(self.scenarios)} does not match "
                f"design.members {design.members}"
            )
        # ---- shared discretization: one mesh for the whole campaign ----
        self._species = {
            float(Z): QuenchParameters(Z=float(Z)).species()
            for Z in design.Z_choices
        }
        self.fs = FunctionSpace(
            landau_mesh(self._design_vths(), **(self.options.mesh_kwargs or {})),
            order=self.options.order,
        )
        self._moments = {
            Z: Moments(self.fs, spc) for Z, spc in self._species.items()
        }
        self._plans = {
            Z: SolvePlan(
                self.fs,
                spc,
                dt=self.options.dt,
                rtol=self.options.rtol,
                max_newton=self.options.max_newton,
            )
            for Z, spc in self._species.items()
        }
        if service is not None and service._started:
            raise ValueError(
                "CampaignDriver needs a non-started service (deterministic "
                "drain mode); don't call service.start()"
            )
        self._own_service = service is None
        self.service = service or CollisionSolveService(
            serve_options or ServeOptions(num_shards=2, max_batch=32)
        )
        # ---- campaign state -------------------------------------------
        self.completed: dict[str, MemberResult] = {}
        self.active: dict[str, _MemberRun] = {}
        self.rounds = 0
        self.resumed_members = 0
        self.ledger_writes = 0
        self.executed_job_ids: list[str] = []
        self._ledger_job_ids: set[str] = set()
        self.rerun_overlap = 0
        self.jobs = {"submitted": 0, "ok": 0, "failed": 0, "shed": 0, "retried": 0}
        self.accumulators = {
            name: EnsembleAccumulator(name, seed=design.seed)
            for name in OUTPUTS
        }
        self._oat_inputs: list[dict] = []
        self._oat_outputs: dict[str, list[float]] = {n: [] for n in OUTPUTS}

    # ------------------------------------------------------------------
    def _design_vths(self) -> list[float]:
        """Thermal-velocity envelope the shared mesh must resolve — a
        function of the *design*, so the mesh is identical across runs
        and across resumes regardless of which members were sampled."""
        d = self.design
        tf_lo = math.exp(-3.0 * d.kl_sigma_temperature)
        tf_hi = math.exp(+3.0 * d.kl_sigma_temperature)
        cold_T = d.cold_temperature[0]
        vths: list[float] = []
        for Z, spc in sorted(self._species.items()):
            for s in spc:
                base = s.thermal_velocity
                vths += [base * math.sqrt(tf_lo), base * math.sqrt(tf_hi)]
                vths.append(
                    math.sqrt(math.pi) / 2.0 * math.sqrt(cold_T / s.mass)
                )
        return vths

    def species_for(self, Z: float):
        return self._species[float(Z)]

    def moments_for(self, Z: float) -> Moments:
        return self._moments[float(Z)]

    def plan_for(self, Z: float) -> SolvePlan:
        return self._plans[float(Z)]

    # ------------------------------------------------------------------
    # ledger (RPROCKSUM1 envelope, atomic)
    @property
    def ledger_path(self) -> str | None:
        if self.options.checkpoint_dir is None:
            return None
        return os.path.join(self.options.checkpoint_dir, LEDGER_NAME)

    def _fingerprint(self) -> dict:
        return {
            "design_key": self.design.content_key(),
            "ndofs": int(self.fs.ndofs),
            "dt": float(self.options.dt),
            "order": int(self.options.order),
        }

    def write_ledger(self) -> str | None:
        path = self.ledger_path
        if path is None:
            return None
        os.makedirs(self.options.checkpoint_dir, exist_ok=True)
        payload = {
            "version": LEDGER_VERSION,
            "fingerprint": self._fingerprint(),
            "round": self.rounds,
            "completed": {k: r.to_dict() for k, r in self.completed.items()},
            "in_progress": {
                k: run.ledger_entry() for k, run in self.active.items()
            },
            "executed_job_ids": sorted(
                set(self.executed_job_ids) | self._ledger_job_ids
            ),
            "jobs": dict(self.jobs),
        }
        write_checksummed(path, pickle.dumps(payload, protocol=4))
        self.ledger_writes += 1
        return path

    def load_ledger(self) -> dict:
        path = self.ledger_path
        if path is None or not os.path.exists(path):
            raise CheckpointError(
                "no campaign ledger to resume from",
                diagnostics={"path": path},
            )
        payload = pickle.loads(read_checksummed(path))
        if payload.get("version") != LEDGER_VERSION:
            raise CheckpointError(
                f"unsupported campaign ledger version {payload.get('version')}",
                diagnostics={"path": path},
            )
        fp = self._fingerprint()
        if payload.get("fingerprint") != fp:
            raise CheckpointError(
                "campaign ledger belongs to a different design/configuration",
                diagnostics={"saved": payload.get("fingerprint"), "current": fp},
            )
        return payload

    # ------------------------------------------------------------------
    def _finalize_member(self, run: _MemberRun) -> MemberResult:
        """Member-at-a-time diagnostics: the Fig. 5 outputs as scalars."""
        p = run.scenario.params
        mom = self.moments_for(p.Z)
        sm = mom.species_moments(0, run.state[0])
        T_e = max(sm.temperature, 1e-6)
        n_e = sm.density
        # quench time: first threshold crossing, linearly interpolated
        target = self.options.quench_threshold * run.T_e0
        quench_time = float("nan")
        for (t0, T0), (t1, T1) in zip(run.trace, run.trace[1:]):
            if T0 > target >= T1:
                frac = (T0 - target) / max(T0 - T1, 1e-300)
                quench_time = t0 + frac * (t1 - t0)
                break
        eta_post = spitzer_eta_code(self.units, T_e, p.Z)
        # runaway-seed fraction: the electrons left beyond the seed
        # boundary of the *collapsed* bulk.  The Connor-Hastie v_c of the
        # sampled drive caps the boundary (at E -> E_D it enters the
        # thermal bulk); far below the Dreicer field v_c is tens of
        # thermal speeds out, and the measurable seed population is the
        # hot remnant beyond ``seed_velocity_factor`` collapsed thermal
        # velocities — the paper's seed-runaway mechanism.
        E_c = connor_hastie_field_code(self.units, n_e_code=1.0)
        v_c = runaway_critical_velocity_code(
            self.units,
            p.E0_over_Ec * E_c,
            n_e_code=max(n_e, 1e-12),
            Te_over_T0=T_e,
        )
        vte_final = math.sqrt(math.pi) / 2.0 * math.sqrt(T_e)
        v_seed = min(v_c, self.options.seed_velocity_factor * vte_final)
        f_q = self.fs.eval(run.state[0])
        r, z = self.fs.qpoints[:, :, 0], self.fs.qpoints[:, :, 1]
        mask = (r * r + z * z) > v_seed * v_seed
        total = self.fs.integrate(f_q)
        tail = self.fs.integrate(np.where(mask, f_q, 0.0))
        runaway_fraction = tail / total if total > 0 else float("nan")
        result = MemberResult(
            index=run.scenario.index,
            member_key=run.key,
            status="ok",
            steps=run.step,
            quench_time=quench_time,
            T_e_final=float(sm.temperature),
            n_e_final=float(n_e),
            eta_post=float(eta_post),
            runaway_fraction=float(runaway_fraction),
            state_sha256=hashlib.sha256(
                np.ascontiguousarray(run.state).tobytes()
            ).hexdigest(),
            retried_jobs=run.retried_jobs,
            inputs=dict(run.scenario.inputs),
        )
        return result

    def _absorb_result(self, result: MemberResult) -> None:
        """Feed one terminal member into the streaming reductions."""
        self.completed[result.member_key] = result
        if result.status != "ok":
            return
        for name in OUTPUTS:
            value = getattr(result, name)
            self.accumulators[name].add(value)
            self._oat_outputs[name].append(value)
        self._oat_inputs.append(dict(result.inputs))

    # ------------------------------------------------------------------
    def run(self, resume: bool = False) -> list[MemberResult]:
        """Execute (or resume) the campaign to completion.

        Returns every member's :class:`MemberResult` in member-index
        order.  ``resume=True`` loads the ledger and re-runs only
        unfinished members; job ids executed by both the previous and
        the current incarnation are counted in :attr:`rerun_overlap`
        (a correct resume keeps it at 0).
        """
        order = sorted(self.scenarios, key=lambda sc: sc.member_key)
        ledger = None
        if resume:
            ledger = self.load_ledger()
            self._ledger_job_ids = set(ledger["executed_job_ids"])
            for key, rd in ledger["completed"].items():
                self._absorb_result(MemberResult.from_dict(rd))
            self.jobs.update(
                {k: int(v) for k, v in ledger.get("jobs", {}).items()}
            )
        for sc in order:
            if sc.member_key in self.completed:
                continue
            run = _MemberRun(sc, self)
            if ledger is not None and sc.member_key in ledger["in_progress"]:
                run.restore(ledger["in_progress"][sc.member_key])
                self.resumed_members += 1
            self.active[sc.member_key] = run
        if resume:
            self.resumed_members += len(ledger["completed"])

        while self.active:
            self._round()
            if (
                self.ledger_path is not None
                and self.rounds % max(1, self.options.checkpoint_every_rounds) == 0
            ):
                self.write_ledger()
        if self.ledger_path is not None:
            self.write_ledger()
        self.rerun_overlap = len(
            set(self.executed_job_ids) & self._ledger_job_ids
        )
        results = sorted(self.completed.values(), key=lambda r: r.index)
        if self._own_service:
            self.service.close()
        return results

    def _round(self) -> None:
        """One lock-step round: every active member takes one collision
        step through the serve tier, in canonical order, chunked under
        ``max_inflight``, executed with the deterministic drain."""
        actives = [self.active[k] for k in sorted(self.active)]
        chunk = max(1, self.options.max_inflight)
        for lo in range(0, len(actives), chunk):
            group = actives[lo : lo + chunk]
            handles = []
            for run in group:
                plan = self.plan_for(run.scenario.params.Z)
                jid = run.job_id()
                handles.append(
                    (
                        run,
                        jid,
                        self.service.submit(
                            plan,
                            run.state,
                            job_id=jid,
                            tag=f"{self.options.name}:{run.key[:12]}",
                        ),
                    )
                )
                self.jobs["submitted"] += 1
            self.service.drain()
            for run, jid, handle in handles:
                res = handle.result(timeout=600.0)
                self.executed_job_ids.append(jid)
                if res.ok:
                    self.jobs["ok"] += 1
                    run.state = np.asarray(res.state, dtype=float)
                    run.t += self.options.dt
                    run.step += 1
                    run.retries = 0
                    run.apply_injection(self)
                    run.record(self)
                    if run.done:
                        self._absorb_result(self._finalize_member(run))
                        del self.active[run.key]
                    continue
                self.jobs["shed" if res.status == "shed" else "failed"] += 1
                if run.retries < self.options.max_retries:
                    run.retries += 1
                    run.retried_jobs += 1
                    self.jobs["retried"] += 1
                else:
                    self._absorb_result(
                        MemberResult(
                            index=run.scenario.index,
                            member_key=run.key,
                            status="failed",
                            steps=run.step,
                            retried_jobs=run.retried_jobs,
                            inputs=dict(run.scenario.inputs),
                        )
                    )
                    del self.active[run.key]
        self.rounds += 1

    # ------------------------------------------------------------------
    def statistics(self, n_boot: int = 400) -> dict:
        """Streaming distribution summaries + OAT sensitivity indices."""
        distributions = {
            name: acc.summary(n_boot=n_boot)
            for name, acc in self.accumulators.items()
        }
        sensitivity = {
            name: oat_sensitivity(self._oat_inputs, self._oat_outputs[name])
            for name in OUTPUTS
        }
        return {"distributions": distributions, "sensitivity": sensitivity}

    def snapshot(self) -> dict:
        """Campaign rollup for :func:`repro.report.serve_summary`."""
        failed = sum(
            1 for r in self.completed.values() if r.status != "ok"
        )
        return {
            "name": self.options.name,
            "design": {
                "members": self.design.members,
                "design": self.design.design,
                "seed": self.design.seed,
                "design_key": self.design.content_key()[:12],
            },
            "members": {
                "total": len(self.scenarios),
                "completed": len(self.completed) - failed,
                "failed": failed,
                "resumed": self.resumed_members,
                "pending": len(self.active),
            },
            "jobs": {**self.jobs, "rerun_overlap": self.rerun_overlap},
            "rounds": self.rounds,
            "checkpoint": {
                "path": self.ledger_path,
                "writes": self.ledger_writes,
            },
        }
