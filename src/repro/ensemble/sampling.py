"""Seeded, reproducible quench-scenario sampling.

The ensemble turns the single canonical §IV-C quench into a distribution
over :class:`~repro.quench.model.QuenchParameters`: Karhunen-Loève
perturbations of the initial density/temperature Maxwellian parameters,
randomized cold-plasma injection timing and amplitude, an impurity-charge
mix drawn from a small discrete set (so members sharing a charge share a
warm serve plan), and a drifted runaway-electron seed population sized
against the Connor-Hastie critical-field machinery in
:mod:`repro.quench.runaway`.

Reproducibility is by construction, not by luck:

* the campaign seed is a ``numpy.random.SeedSequence``; every member gets
  its **own** spawned child generator, so a member's draws depend only on
  ``(seed, member index)`` — never on sampling order, executor
  interleaving, or how many other members exist before it in a batch;
* Latin-hypercube stratification uses permutations drawn from a separate
  design-level child, so the LHS design is shared state but still a pure
  function of the seed;
* every member carries a stable SHA-256 ``member_key`` over its sampled
  content — the scenario *is* its own cache/checkpoint key.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field, fields as dataclass_fields

import numpy as np

from ..quench.model import QuenchParameters

__all__ = [
    "GaussianRandomField1D",
    "QuenchScenario",
    "ScenarioDesign",
    "member_seed_sequences",
    "sample_scenarios",
]

#: sampled scalar dimensions, in draw order (one LHS column each)
_SCALAR_DIMS = (
    "E0_over_Ec",
    "injection_start",
    "injection_total",
    "injection_duration",
    "cold_temperature",
    "runaway_seed_fraction",
)


class GaussianRandomField1D:
    """Truncated Karhunen-Loève expansion of a squared-exponential GRF.

    The covariance ``C(x, y) = exp(-(x - y)^2 / (2 l^2))`` on a uniform
    grid over ``[0, 1]`` is eigendecomposed once; a realization is
    ``xi(x) = sum_k sqrt(lambda_k) theta_k phi_k(x)`` with iid standard
    normal KL coefficients ``theta``.  Members use the mid-domain value
    of their realization as a smooth, correlated perturbation of the
    Maxwellian parameters (log-normally applied, so factors stay
    positive).
    """

    def __init__(self, modes: int = 4, length: float = 0.3, grid: int = 33):
        if modes < 1:
            raise ValueError(f"modes must be >= 1, got {modes}")
        if not (np.isfinite(length) and length > 0):
            raise ValueError(f"length must be positive, got {length}")
        if grid < modes:
            raise ValueError(f"grid ({grid}) must be >= modes ({modes})")
        self.x = np.linspace(0.0, 1.0, grid)
        d = self.x[:, None] - self.x[None, :]
        C = np.exp(-0.5 * (d / length) ** 2)
        # trapezoid quadrature weights make the discrete problem a
        # Nystrom approximation of the continuous eigenproblem
        w = np.full(grid, 1.0 / (grid - 1))
        w[0] = w[-1] = 0.5 / (grid - 1)
        sw = np.sqrt(w)
        lam, vec = np.linalg.eigh(sw[:, None] * C * sw[None, :])
        order = np.argsort(lam)[::-1][:modes]
        self.eigenvalues = np.clip(lam[order], 0.0, None)
        self.modes_on_grid = vec[:, order] / sw[:, None]
        self.n_modes = modes

    def realize(self, theta: np.ndarray) -> np.ndarray:
        """Field values on the grid for KL coefficients ``theta``."""
        theta = np.asarray(theta, dtype=float)
        if theta.shape != (self.n_modes,):
            raise ValueError(
                f"theta must have shape ({self.n_modes},), got {theta.shape}"
            )
        return self.modes_on_grid @ (np.sqrt(self.eigenvalues) * theta)

    def midpoint(self, theta: np.ndarray) -> float:
        """The realization evaluated at the domain center."""
        return float(self.realize(theta)[len(self.x) // 2])


@dataclass(frozen=True)
class ScenarioDesign:
    """Sampling configuration: member count, design type, seed, ranges.

    Each scalar range is ``(low, high)`` for a uniform draw; ``Z_choices``
    is the discrete impurity-charge mix (kept small on purpose — members
    sharing a charge share a mesh/species signature and therefore a warm
    serve plan).  ``kl_*`` configure the Karhunen-Loève field behind the
    log-normal density/temperature factors.
    """

    members: int = 8
    design: str = "lhs"  # "lhs" | "mc"
    seed: int = 0
    Z_choices: tuple = (1.0, 2.0)
    E0_over_Ec: tuple = (0.3, 0.7)
    injection_start: tuple = (0.0, 1.0)
    injection_total: tuple = (2.0, 8.0)
    injection_duration: tuple = (6.0, 12.0)
    cold_temperature: tuple = (0.1, 0.3)
    runaway_seed_fraction: tuple = (0.0, 0.05)
    runaway_seed_drift: float = 2.0
    kl_modes: int = 4
    kl_length: float = 0.3
    kl_sigma_density: float = 0.12
    kl_sigma_temperature: float = 0.08

    def __post_init__(self):
        if int(self.members) != self.members or self.members < 1:
            raise ValueError(
                f"ScenarioDesign.members must be a positive integer, got {self.members}"
            )
        if self.design not in ("lhs", "mc"):
            raise ValueError(
                f"ScenarioDesign.design must be 'lhs' or 'mc', got {self.design!r}"
            )
        if not self.Z_choices or any(z < 1.0 for z in self.Z_choices):
            raise ValueError(
                f"ScenarioDesign.Z_choices must be charges >= 1, got {self.Z_choices}"
            )
        for name in _SCALAR_DIMS:
            lo, hi = getattr(self, name)
            if not (np.isfinite(lo) and np.isfinite(hi) and lo <= hi):
                raise ValueError(
                    f"ScenarioDesign.{name} must be a finite (low, high) range, "
                    f"got {(lo, hi)}"
                )
        for name in ("kl_sigma_density", "kl_sigma_temperature"):
            v = getattr(self, name)
            if not (np.isfinite(v) and v >= 0):
                raise ValueError(
                    f"ScenarioDesign.{name} must be non-negative, got {v}"
                )

    def to_dict(self) -> dict:
        out = {}
        for f in sorted(dataclass_fields(self), key=lambda f: f.name):
            v = getattr(self, f.name)
            out[f.name] = list(v) if isinstance(v, tuple) else v
        return out

    def content_key(self) -> str:
        """Stable digest of the design — the campaign ledger identity."""
        blob = json.dumps(self.to_dict(), sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()


@dataclass(frozen=True)
class QuenchScenario:
    """One sampled ensemble member.

    ``inputs`` holds the sampled coordinates (the sensitivity-analysis
    dimensions, including the KL-derived factors); ``member_key`` is a
    stable content hash — checkpoint ledgers and serve job ids key on it.
    """

    index: int
    params: QuenchParameters
    inputs: dict = field(default_factory=dict)
    member_key: str = ""

    def __post_init__(self):
        if not self.member_key:
            blob = json.dumps(
                {
                    "index": self.index,
                    "params": self.params.to_dict(),
                    "inputs": {k: float(v) for k, v in sorted(self.inputs.items())},
                },
                sort_keys=True,
            ).encode()
            object.__setattr__(
                self, "member_key", hashlib.sha256(blob).hexdigest()
            )


def member_seed_sequences(design: ScenarioDesign):
    """``(design_child, [member_children])`` spawned from the campaign seed.

    Child 0 belongs to the design (LHS permutations); children
    ``1..members`` belong to the members, in index order — a member's
    stream is a pure function of ``(seed, index)``.
    """
    children = np.random.SeedSequence(design.seed).spawn(design.members + 1)
    return children[0], children[1:]


def _lhs_permutations(design: ScenarioDesign, design_rng) -> dict[str, np.ndarray]:
    """One stratum permutation per sampled dimension (fixed dim order)."""
    perms = {}
    for name in _SCALAR_DIMS + ("Z",):
        perms[name] = design_rng.permutation(design.members)
    return perms


def sample_scenarios(design: ScenarioDesign) -> list[QuenchScenario]:
    """Sample the full member list for a design (deterministic).

    For the ``lhs`` design each scalar dimension is stratified into
    ``members`` equal-probability bins with the bin assignment drawn from
    the design stream and the within-bin jitter from the *member's own*
    stream; ``mc`` draws everything from the member stream.  KL
    coefficients are member-stream standard normals either way (the
    factors are marginally log-normal, which stratification would bias).
    """
    design_child, member_children = member_seed_sequences(design)
    design_rng = np.random.default_rng(design_child)
    perms = _lhs_permutations(design, design_rng) if design.design == "lhs" else None
    grf = GaussianRandomField1D(modes=design.kl_modes, length=design.kl_length)

    scenarios = []
    m = design.members
    for i in range(m):
        rng = np.random.default_rng(member_children[i])
        inputs: dict[str, float] = {}
        # fixed draw order: the scalar dims, then Z, then the KL thetas
        for name in _SCALAR_DIMS:
            lo, hi = getattr(design, name)
            if perms is not None:
                u = (perms[name][i] + rng.random()) / m
            else:
                u = rng.random()
            inputs[name] = float(lo + (hi - lo) * u)
        if perms is not None:
            zi = int(perms["Z"][i] * len(design.Z_choices) // m)
        else:
            zi = int(rng.integers(len(design.Z_choices)))
        inputs["Z"] = float(design.Z_choices[zi])
        theta_n = rng.standard_normal(design.kl_modes)
        theta_T = rng.standard_normal(design.kl_modes)
        inputs["density_factor"] = math.exp(
            design.kl_sigma_density * grf.midpoint(theta_n)
        )
        inputs["temperature_factor"] = math.exp(
            design.kl_sigma_temperature * grf.midpoint(theta_T)
        )
        params = QuenchParameters(
            Z=inputs["Z"],
            E0_over_Ec=inputs["E0_over_Ec"],
            injection_total=inputs["injection_total"],
            injection_start=inputs["injection_start"],
            injection_duration=inputs["injection_duration"],
            cold_temperature=inputs["cold_temperature"],
            density_factor=inputs["density_factor"],
            temperature_factor=inputs["temperature_factor"],
            runaway_seed_fraction=inputs["runaway_seed_fraction"],
            runaway_seed_drift=design.runaway_seed_drift,
        )
        scenarios.append(QuenchScenario(index=i, params=params, inputs=inputs))
    return scenarios
