"""Streaming uncertainty-quantification reductions.

Members arrive one at a time (the campaign never holds full-ensemble
field arrays); every estimator here consumes scalars member-at-a-time:

* :class:`StreamingMoments` — Welford mean/variance;
* :class:`P2Quantile` — the Jain-Chlamtac P² running-quantile estimator
  (constant memory, no sorting of the full sample);
* :class:`ScalarReservoir` — a bounded scalar buffer feeding exact
  quantiles and bootstrap confidence intervals for campaign sizes below
  the cap (beyond it, the P² estimates stand alone and the CIs are
  computed on the retained subsample);
* :func:`bootstrap_ci` — seeded percentile bootstrap of any statistic;
* :func:`oat_sensitivity` — Sobol-style one-at-a-time first-order
  indices: the between-bin variance of conditional output means over
  each input dimension, normalized by total output variance.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "StreamingMoments",
    "P2Quantile",
    "ScalarReservoir",
    "EnsembleAccumulator",
    "bootstrap_ci",
    "oat_sensitivity",
]


class StreamingMoments:
    """Welford single-pass mean/variance."""

    def __init__(self):
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0

    def add(self, x: float) -> None:
        x = float(x)
        if not math.isfinite(x):
            return
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)


class P2Quantile:
    """Jain-Chlamtac P² streaming quantile estimator (5 markers)."""

    def __init__(self, p: float):
        if not (0.0 < p < 1.0):
            raise ValueError(f"p must be in (0, 1), got {p}")
        self.p = float(p)
        self._init: list[float] = []
        self._q = None  # marker heights
        self._n = None  # marker positions
        self._np = None  # desired positions
        self._dn = None  # desired-position increments

    def add(self, x: float) -> None:
        x = float(x)
        if not math.isfinite(x):
            return
        if self._q is None:
            self._init.append(x)
            if len(self._init) == 5:
                self._init.sort()
                p = self.p
                self._q = list(self._init)
                self._n = [0.0, 1.0, 2.0, 3.0, 4.0]
                self._np = [0.0, 2 * p, 4 * p, 2 + 2 * p, 4.0]
                self._dn = [0.0, p / 2, p, (1 + p) / 2, 1.0]
            return
        q, n = self._q, self._n
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = x
            k = 3
        else:
            k = 0
            while k < 3 and x >= q[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1.0
        for i in range(5):
            self._np[i] += self._dn[i]
        for i in (1, 2, 3):
            d = self._np[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                d <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                d = 1.0 if d >= 1.0 else -1.0
                qp = self._parabolic(i, d)
                if not (q[i - 1] < qp < q[i + 1]):
                    qp = self._linear(i, d)
                q[i] = qp
                n[i] += d

    def _parabolic(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        j = i + int(d)
        return q[i] + d * (q[j] - q[i]) / (n[j] - n[i])

    @property
    def value(self) -> float:
        if self._q is not None:
            return float(self._q[2])
        if not self._init:
            return float("nan")
        # fewer than 5 samples: fall back to the exact empirical quantile
        s = sorted(self._init)
        k = self.p * (len(s) - 1)
        lo = int(math.floor(k))
        hi = min(lo + 1, len(s) - 1)
        return s[lo] + (k - lo) * (s[hi] - s[lo])


class ScalarReservoir:
    """Bounded scalar buffer (first ``cap`` finite values are retained)."""

    def __init__(self, cap: int = 4096):
        if cap < 1:
            raise ValueError(f"cap must be positive, got {cap}")
        self.cap = int(cap)
        self.values: list[float] = []
        self.seen = 0
        self.dropped = 0

    def add(self, x: float) -> None:
        x = float(x)
        if not math.isfinite(x):
            return
        self.seen += 1
        if len(self.values) < self.cap:
            self.values.append(x)
        else:
            self.dropped += 1

    def quantile(self, p: float) -> float:
        if not self.values:
            return float("nan")
        return float(np.quantile(np.asarray(self.values), p))


def bootstrap_ci(
    values,
    stat=np.mean,
    n_boot: int = 400,
    alpha: float = 0.05,
    seed: int = 0,
) -> tuple[float, float]:
    """Seeded percentile-bootstrap ``(lo, hi)`` CI of ``stat(values)``."""
    arr = np.asarray(list(values), dtype=float)
    arr = arr[np.isfinite(arr)]
    if arr.size < 2:
        v = float(stat(arr)) if arr.size else float("nan")
        return (v, v)
    rng = np.random.default_rng(np.random.SeedSequence(seed))
    idx = rng.integers(0, arr.size, size=(n_boot, arr.size))
    reps = np.asarray([float(stat(arr[row])) for row in idx])
    lo, hi = np.quantile(reps, [alpha / 2.0, 1.0 - alpha / 2.0])
    return (float(lo), float(hi))


class EnsembleAccumulator:
    """Member-at-a-time reduction of one scalar campaign output.

    Keeps Welford moments, P² quantile markers for the requested
    probabilities, and a bounded reservoir for exact quantiles/bootstrap
    CIs.  :meth:`summary` is the JSON-able distribution record the
    campaign report and ``BENCH_ensemble.json`` embed.
    """

    QUANTILES = (0.05, 0.25, 0.5, 0.75, 0.95)

    def __init__(self, name: str, reservoir_cap: int = 4096, seed: int = 0):
        self.name = name
        self.moments = StreamingMoments()
        self.p2 = {p: P2Quantile(p) for p in self.QUANTILES}
        self.reservoir = ScalarReservoir(reservoir_cap)
        self.seed = int(seed)
        self.skipped = 0  # non-finite member outputs (e.g. no quench crossing)

    def add(self, x: float) -> None:
        if not math.isfinite(float(x)):
            self.skipped += 1
            return
        self.moments.add(x)
        for est in self.p2.values():
            est.add(x)
        self.reservoir.add(x)

    def summary(self, n_boot: int = 400) -> dict:
        ci_lo, ci_hi = bootstrap_ci(
            self.reservoir.values, n_boot=n_boot, seed=self.seed
        )
        quantiles = {}
        for p in self.QUANTILES:
            # exact from the reservoir while it covers the sample;
            # P² streaming estimate once members outnumber the cap
            exact_ok = self.reservoir.dropped == 0
            quantiles[f"q{int(p * 100):02d}"] = (
                self.reservoir.quantile(p) if exact_ok else self.p2[p].value
            )
        return {
            "name": self.name,
            "count": self.moments.count,
            "skipped": self.skipped,
            "mean": self.moments.mean,
            "std": self.moments.std,
            "variance": self.moments.variance,
            "ci95_mean": [ci_lo, ci_hi],
            **quantiles,
        }


def oat_sensitivity(
    inputs: list[dict],
    outputs: list[float],
    bins: int = 4,
) -> dict[str, float]:
    """First-order one-at-a-time sensitivity indices.

    For each input dimension the members are split into ``bins``
    equal-count bins by that input; the index is the variance of the
    per-bin conditional output means over the total output variance — a
    binned estimate of the Sobol first-order index ``Var(E[Y|X_i]) /
    Var(Y)``.  Dimensions with (near-)zero input spread report 0.
    """
    if len(inputs) != len(outputs):
        raise ValueError(
            f"inputs/outputs length mismatch: {len(inputs)} vs {len(outputs)}"
        )
    y = np.asarray(outputs, dtype=float)
    keep = np.isfinite(y)
    y = y[keep]
    if y.size < 2 * bins or float(np.var(y)) == 0.0:
        return {}
    var_y = float(np.var(y))
    kept_inputs = [d for d, k in zip(inputs, keep) if k]
    out = {}
    for name in sorted(kept_inputs[0]):
        x = np.asarray([d[name] for d in kept_inputs], dtype=float)
        if float(np.ptp(x)) == 0.0:
            out[name] = 0.0
            continue
        order = np.argsort(x, kind="stable")
        splits = np.array_split(order, bins)
        means = [float(np.mean(y[s])) for s in splits if s.size]
        counts = np.asarray([s.size for s in splits if s.size], dtype=float)
        mu = float(np.sum(counts * means) / np.sum(counts))
        between = float(
            np.sum(counts * (np.asarray(means) - mu) ** 2) / np.sum(counts)
        )
        out[name] = between / var_y
    return out
