"""Campaign reporting: ASCII rollup + the BENCH-style JSON artifact.

The operator-facing text report is built on :func:`repro.report.serve_summary`
(the campaign snapshot rolls into the service summary rather than a
separate print path) plus distribution/sensitivity tables; the JSON
artifact mirrors the ``BENCH_*.json`` convention so CI uploads it the
same way.
"""

from __future__ import annotations

import json

from ..report import format_table, serve_summary

__all__ = ["campaign_report", "distribution_table", "write_campaign_json"]


def distribution_table(statistics: dict) -> str:
    """Render the per-output distribution summaries as one table."""
    headers = [
        "output",
        "count",
        "mean",
        "std",
        "q05",
        "q50",
        "q95",
        "ci95 lo",
        "ci95 hi",
    ]
    rows = []
    for name, s in statistics["distributions"].items():
        rows.append(
            [
                name,
                s["count"],
                s["mean"],
                s["std"],
                s["q05"],
                s["q50"],
                s["q95"],
                s["ci95_mean"][0],
                s["ci95_mean"][1],
            ]
        )
    return format_table(headers, rows, title="ensemble distributions")


def _sensitivity_table(statistics: dict) -> str | None:
    sens = statistics.get("sensitivity") or {}
    dims = sorted({d for table in sens.values() for d in table})
    if not dims:
        return None
    headers = ["input"] + list(sens)
    rows = [
        [d] + [sens[out].get(d, float("nan")) for out in sens] for d in dims
    ]
    return format_table(
        headers, rows, title="OAT first-order sensitivity (Var(E[Y|X])/Var(Y))"
    )


def campaign_report(
    campaign_snapshot: dict,
    statistics: dict,
    serve_snapshot: dict | None = None,
) -> str:
    """Full campaign report: serve rollup + distributions + sensitivity."""
    lines = []
    if serve_snapshot is not None:
        lines.append(serve_summary(serve_snapshot, campaign=campaign_snapshot))
    else:
        m = campaign_snapshot.get("members", {})
        j = campaign_snapshot.get("jobs", {})
        lines.append(
            format_table(
                ["members", "completed", "failed", "resumed", "jobs ok", "retried"],
                [
                    [
                        m.get("total", 0),
                        m.get("completed", 0),
                        m.get("failed", 0),
                        m.get("resumed", 0),
                        j.get("ok", 0),
                        j.get("retried", 0),
                    ]
                ],
                title=f"ensemble campaign: {campaign_snapshot.get('name', '?')}",
            )
        )
    lines += ["", distribution_table(statistics)]
    sens = _sensitivity_table(statistics)
    if sens:
        lines += ["", sens]
    return "\n".join(lines)


def write_campaign_json(
    path: str,
    campaign_snapshot: dict,
    statistics: dict,
    serve_snapshot: dict | None = None,
    extra: dict | None = None,
) -> str:
    """Write the ``BENCH_*.json``-style campaign artifact; returns path."""
    payload = {
        "benchmark": "ensemble",
        "campaign": campaign_snapshot,
        "statistics": statistics,
        **(extra or {}),
    }
    if serve_snapshot is not None:
        payload["serve"] = {
            "jobs": serve_snapshot.get("jobs", {}),
            "plan_cache": serve_snapshot.get("plan_cache", {}),
            "failures": serve_snapshot.get("failures", {}),
            "options": serve_snapshot.get("options", {}),
        }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True, default=float)
        fh.write("\n")
    return path
