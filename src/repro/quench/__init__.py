"""The Vlasov-Poisson-Landau thermal quench model (section IV).

Spitzer resistivity (verification, Fig. 4), the Connor-Hastie critical
field, the cold-plasma injection source, and the phase-switching quench
driver that produces the Fig. 5 profiles (n_e, J, E, T_e vs time).
"""

from .spitzer import F_Z, spitzer_eta_si, spitzer_eta_code, spitzer_table
from .runaway import (
    connor_hastie_field_si,
    connor_hastie_field_code,
    dreicer_field_si,
    dreicer_field_code,
    runaway_critical_velocity_code,
)
from .source import ColdPlasmaSource
from .model import (
    QuenchHistory,
    QuenchParameters,
    ThermalQuenchModel,
    measure_resistivity,
)

__all__ = [
    "F_Z",
    "spitzer_eta_si",
    "spitzer_eta_code",
    "spitzer_table",
    "connor_hastie_field_si",
    "connor_hastie_field_code",
    "dreicer_field_si",
    "dreicer_field_code",
    "runaway_critical_velocity_code",
    "ColdPlasmaSource",
    "ThermalQuenchModel",
    "QuenchHistory",
    "QuenchParameters",
    "measure_resistivity",
]
