"""Spitzer resistivity (eq. 12, section IV-A).

The classic parallel resistivity of a collisional plasma:

    eta = (4 sqrt(2 pi) / 3) * Z e^2 sqrt(m_e) ln(Lambda) F(Z)
          / ((4 pi eps0)^2 (k_B T_e)^(3/2))

    F(Z) = (1 + 1.198 Z + 0.222 Z^2) / (1 + 2.966 Z + 0.753 Z^2)

The FP-Landau code should approximately converge to this (the paper
observes its deuterium plasma settling about 1% *below* Spitzer).
"""

from __future__ import annotations

import math

from .. import constants as c
from ..units import UnitSystem


def F_Z(Z: float) -> float:
    """Neoclassical-style charge correction factor of eq. (12)."""
    if Z <= 0:
        raise ValueError(f"Z must be positive, got {Z}")
    return (1.0 + 1.198 * Z + 0.222 * Z * Z) / (1.0 + 2.966 * Z + 0.753 * Z * Z)


def spitzer_eta_si(
    Te_ev: float, Z: float, coulomb_log: float = c.COULOMB_LOG
) -> float:
    """Parallel Spitzer resistivity in ohm-metres; ``Te`` in eV."""
    if Te_ev <= 0:
        raise ValueError(f"temperature must be positive, got {Te_ev}")
    kT = Te_ev * c.EV  # k_B T_e in joules
    num = (
        (4.0 * math.sqrt(2.0 * math.pi) / 3.0)
        * Z
        * c.ELECTRON_CHARGE**2
        * math.sqrt(c.ELECTRON_MASS)
        * coulomb_log
        * F_Z(Z)
    )
    den = (4.0 * math.pi * c.VACUUM_PERMITTIVITY) ** 2 * kT**1.5
    return num / den


def spitzer_eta_code(
    units: UnitSystem, Te_over_T0: float, Z: float
) -> float:
    """Spitzer resistivity in code units (``eta~ = E~ / J~``).

    ``Te_over_T0`` is the electron temperature in units of the reference
    temperature that anchors the unit system.  Note the Coulomb-logarithm
    dependence cancels between the SI value and the time normalization.
    """
    eta_si = spitzer_eta_si(Te_over_T0 * units.T0_ev, Z, units.coulomb_log)
    return units.resistivity_to_code(eta_si)


def spitzer_table(units: UnitSystem, Zs: list[float]) -> list[dict[str, float]]:
    """Reference rows for the Fig. 4 comparison at ``T_e = T0``."""
    return [
        {"Z": Z, "F_Z": F_Z(Z), "eta_spitzer_code": spitzer_eta_code(units, 1.0, Z)}
        for Z in Zs
    ]
