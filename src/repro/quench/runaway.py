"""Runaway-electron critical fields (section IV, references [28], [29]).

The Connor-Hastie critical field is the field below which no electron can
run away (collisional drag at v -> c exceeds acceleration):

    E_c = n_e e^3 ln(Lambda) / (4 pi eps0^2 m_e c^2)

The Dreicer field, at which the *bulk* runs away, is larger by
``(c / v_te)^2``:

    E_D = n_e e^3 ln(Lambda) / (4 pi eps0^2 k_B T_e)

The Fig. 5 experiment starts from ``E = 0.5 E_c``.
"""

from __future__ import annotations

import math

from .. import constants as c
from ..units import UnitSystem


def connor_hastie_field_si(
    n_e: float, coulomb_log: float = c.COULOMB_LOG
) -> float:
    """E_c in V/m for electron density ``n_e`` in m^-3."""
    if n_e <= 0:
        raise ValueError(f"density must be positive, got {n_e}")
    return (
        n_e
        * c.ELECTRON_CHARGE**3
        * coulomb_log
        / (
            4.0
            * math.pi
            * c.VACUUM_PERMITTIVITY**2
            * c.ELECTRON_MASS
            * c.SPEED_OF_LIGHT**2
        )
    )


def dreicer_field_si(
    n_e: float, Te_ev: float, coulomb_log: float = c.COULOMB_LOG
) -> float:
    """Dreicer field in V/m: ``E_D = E_c (c/v_te)^2 * 2`` form."""
    if Te_ev <= 0:
        raise ValueError(f"temperature must be positive, got {Te_ev}")
    kT = Te_ev * c.EV
    return (
        n_e
        * c.ELECTRON_CHARGE**3
        * coulomb_log
        / (4.0 * math.pi * c.VACUUM_PERMITTIVITY**2 * kT)
    )


def connor_hastie_field_code(
    units: UnitSystem, n_e_code: float = 1.0
) -> float:
    """E_c in code field units for a density in units of n0."""
    return units.efield_to_code(
        connor_hastie_field_si(n_e_code * units.n0, units.coulomb_log)
    )


def dreicer_field_code(
    units: UnitSystem, n_e_code: float = 1.0, Te_over_T0: float = 1.0
) -> float:
    """E_D in code field units for a density in units of n0 and an
    electron temperature in units of T0."""
    return units.efield_to_code(
        dreicer_field_si(
            n_e_code * units.n0, Te_over_T0 * units.T0_ev, units.coulomb_log
        )
    )


def runaway_critical_velocity_code(
    units: UnitSystem,
    E_code: float,
    n_e_code: float = 1.0,
    Te_over_T0: float = 1.0,
) -> float:
    """Runaway-region boundary ``v_c`` in code (v0) units.

    Collisional drag on an electron at speed ``v`` falls off as ``1/v^2``;
    it balances the applied field at ``v_c / v_te = sqrt(E_D / E)``, so
    electrons faster than ``v_c`` run away.  Returns ``inf`` for a
    vanishing (or sub-zero) field — nothing runs away without drive.
    """
    if not (E_code > 0.0):
        return float("inf")
    E_D = dreicer_field_code(units, n_e_code, Te_over_T0)
    # v_te = sqrt(2 k T_e / m_e): the electron thermal speed in v0 units
    v_te = math.sqrt(math.pi) / 2.0 * math.sqrt(Te_over_T0)
    return v_te * math.sqrt(E_D / E_code)
