"""Cold-plasma injection source for the thermal quench (section IV-C).

"A pulse of cold ions is then injected with the source term in (4)" — the
source is a cold Maxwellian in velocity space times a smooth sinusoidal
pulse in time, injected quasineutrally (electrons + ions) so the plasma
stays current-neutral; "the total mass injected by the model is five times
the initial density".  The prescribed electron-density profile is therefore
the sinusoidal ramp the paper shows conserved exactly in Fig. 5.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..fem.function_space import FunctionSpace
from ..core.maxwellian import maxwellian_rz
from ..core.species import SpeciesSet


@dataclass
class ColdPlasmaSource:
    """Quasineutral cold Maxwellian source with a sin^2 time pulse.

    Parameters
    ----------
    species:
        the plasma species; the source feeds electrons (index 0) and the
    	main-ion species (index 1) in charge balance.
    total_injected:
        total injected electron density in units of the *initial* electron
        density (the paper injects 5x).
    t_start, duration:
        pulse window in code time units.
    cold_temperature:
        source temperature in units of T0 (must stay resolvable on the mesh).
    """

    species: SpeciesSet
    total_injected: float = 5.0
    t_start: float = 0.0
    duration: float = 10.0
    cold_temperature: float = 0.15

    def rate(self, t: float) -> float:
        """Instantaneous electron-density injection rate (sin^2 pulse).

        Normalized so the time integral over the pulse equals
        ``total_injected * n_e(0)``.
        """
        if t < self.t_start or t > self.t_start + self.duration:
            return 0.0
        n_e0 = self.species[0].density
        amp = 2.0 * self.total_injected * n_e0 / self.duration
        x = (t - self.t_start) / self.duration
        return amp * math.sin(math.pi * x) ** 2

    def injected_by(self, t: float) -> float:
        """Cumulative injected electron density at time ``t`` (analytic)."""
        n_e0 = self.species[0].density
        if t <= self.t_start:
            return 0.0
        x = min((t - self.t_start) / self.duration, 1.0)
        # integral of 2/d sin^2(pi x) dt from 0 to x*d = x - sin(2 pi x)/(2 pi)
        return self.total_injected * n_e0 * (x - math.sin(2.0 * math.pi * x) / (2.0 * math.pi))

    def shape_vectors(self, fs: FunctionSpace) -> list[np.ndarray | None]:
        """Unit-rate weak-form source vectors ``(psi, S_a)`` per species.

        The electron source has unit density rate; the ion source rate is
        ``1/Z_ion`` so injection is quasineutral.  Species beyond the first
        two receive no source.
        """
        e = self.species[0]
        ion = self.species[1] if len(self.species) > 1 else None
        vth_e = math.sqrt(math.pi) / 2.0 * math.sqrt(self.cold_temperature / e.mass)
        out: list[np.ndarray | None] = []
        b_e = self._weak_vector(fs, vth_e, 1.0)
        out.append(b_e)
        if ion is not None:
            vth_i = (
                math.sqrt(math.pi)
                / 2.0
                * math.sqrt(self.cold_temperature / ion.mass)
            )
            out.append(self._weak_vector(fs, vth_i, 1.0 / ion.charge))
            out.extend([None] * (len(self.species) - 2))
        return out

    @staticmethod
    def _weak_vector(fs: FunctionSpace, vth: float, density: float) -> np.ndarray:
        vals = maxwellian_rz(
            fs.qpoints[:, :, 0], fs.qpoints[:, :, 1], density=density, thermal_velocity=vth
        )
        b_full = np.zeros(fs.dofmap.n_full)
        contrib = np.einsum("eq,qb->eb", fs.qweights * vals, fs.B)
        np.add.at(b_full, fs.dofmap.cell_nodes, contrib)
        return fs.dofmap.reduce_vector(b_full)
