"""The thermal quench driver (section IV-C) and the Spitzer verification run.

The model is a velocity-space Vlasov-Poisson-Landau system for electrons
plus ions under a parallel electric field:

* **Phase 1 (current ramp).**  A fixed field ``E = E0`` (e.g. 0.5 E_c)
  accelerates electrons against collisional friction; the current ``J``
  asymptotes to a quasi-equilibrium.  ``eta = E / J`` there is the
  computed resistivity (the Fig. 4 verification quantity).
* **Phase 2 (quasi-equilibrium).**  Once ``dJ/dt`` is small the driver
  switches to ``E <- eta_Spitzer(T_e) * J``, holding the plasma in Ohmic
  balance.
* **Phase 3 (quench).**  A pulse of cold plasma is injected; ``T_e``
  collapses, Spitzer ``eta`` rises, hence ``E`` rises and accelerates the
  remaining hot electrons — the seed-runaway mechanism the paper shows in
  Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dataclass_fields

import numpy as np

from ..amr import landau_mesh
from ..fem.function_space import FunctionSpace
from ..units import DEFAULT_UNITS, UnitSystem
from ..core.maxwellian import species_maxwellian
from ..core.moments import Moments
from ..core.operator import LandauOperator
from ..core.options import AssemblyOptions
from ..core.solver import ImplicitLandauSolver
from ..core.species import Species, SpeciesSet, electron
from ..resilience import (
    CheckpointError,
    GuardConfig,
    StepGuard,
    TimeStepController,
    load_checkpoint,
    save_checkpoint,
)
from .runaway import connor_hastie_field_code
from .source import ColdPlasmaSource
from .spitzer import spitzer_eta_code


def _validate_stepping(dt: float, max_steps: int, label: str) -> None:
    if not (np.isfinite(dt) and dt > 0):
        raise ValueError(f"{label}: dt must be positive and finite, got {dt}")
    if int(max_steps) != max_steps or max_steps < 1:
        raise ValueError(f"{label}: max_steps must be a positive integer, got {max_steps}")


@dataclass(frozen=True)
class QuenchParameters:
    """The scenario knobs of the §IV-C quench, lifted out of the driver.

    One frozen dataclass holds everything that distinguishes two quench
    scenarios on the same mesh: the ion charge, the drive strength, the
    cold-plasma injection pulse, Maxwellian-parameter perturbations of
    the initial condition, and a drifted runaway-electron seed
    population.  Both the single-run :class:`ThermalQuenchModel` and the
    ensemble sampler (:mod:`repro.ensemble.sampling`) accept it, so a
    sampled scenario can be replayed through the full Fig.-5 driver
    unchanged.

    Validation names the offending field — a campaign of hundreds of
    sampled members must fail with ``QuenchParameters.injection_duration
    must be positive`` rather than a bare ``ValueError``.
    """

    #: fully stripped main-ion charge (hydrogenic A ~ 2Z chain)
    Z: float = 1.0
    #: initial parallel field in units of the Connor-Hastie critical field
    E0_over_Ec: float = 0.5
    #: total injected electron density in units of the initial density
    injection_total: float = 5.0
    #: delay of the cold pulse after the quench phase begins (code time)
    injection_start: float = 0.0
    #: cold-pulse duration (code time)
    injection_duration: float = 10.0
    #: injected-population temperature in units of T0
    cold_temperature: float = 0.15
    #: multiplies the initial electron (and quasineutral ion) density
    density_factor: float = 1.0
    #: multiplies the initial temperature of every species
    temperature_factor: float = 1.0
    #: fraction of the initial electron density seeded as a drifted tail
    runaway_seed_fraction: float = 0.0
    #: seed-tail drift in units of the electron thermal velocity
    runaway_seed_drift: float = 2.0

    def __post_init__(self):
        rules = (
            ("Z", self.Z, self.Z >= 1.0, "must be >= 1"),
            (
                "E0_over_Ec",
                self.E0_over_Ec,
                self.E0_over_Ec >= 0.0,
                "must be non-negative",
            ),
            (
                "injection_total",
                self.injection_total,
                self.injection_total >= 0.0,
                "must be non-negative",
            ),
            (
                "injection_start",
                self.injection_start,
                self.injection_start >= 0.0,
                "must be non-negative",
            ),
            (
                "injection_duration",
                self.injection_duration,
                self.injection_duration > 0.0,
                "must be positive",
            ),
            (
                "cold_temperature",
                self.cold_temperature,
                self.cold_temperature > 0.0,
                "must be positive",
            ),
            (
                "density_factor",
                self.density_factor,
                self.density_factor > 0.0,
                "must be positive",
            ),
            (
                "temperature_factor",
                self.temperature_factor,
                self.temperature_factor > 0.0,
                "must be positive",
            ),
            (
                "runaway_seed_fraction",
                self.runaway_seed_fraction,
                0.0 <= self.runaway_seed_fraction < 1.0,
                "must be in [0, 1)",
            ),
            (
                "runaway_seed_drift",
                self.runaway_seed_drift,
                True,
                "must be finite",
            ),
        )
        for name, value, ok, requirement in rules:
            if not (np.isfinite(value) and ok):
                raise ValueError(
                    f"QuenchParameters.{name} {requirement}, got {value}"
                )

    # ------------------------------------------------------------------
    def species(self) -> SpeciesSet:
        """Electron + ion(Z) species set with the perturbation factors
        applied (quasineutral by construction)."""
        ion = _ion_for_Z(self.Z)
        ion = Species(
            ion.name,
            charge=ion.charge,
            mass=ion.mass,
            density=ion.density * self.density_factor,
            temperature=ion.temperature * self.temperature_factor,
        )
        return SpeciesSet(
            [
                electron(
                    density=self.Z * ion.density,
                    temperature=self.temperature_factor,
                ),
                ion,
            ]
        )

    def source(self, species: SpeciesSet) -> ColdPlasmaSource:
        """The scenario's cold-plasma pulse (``t_start`` is anchored by
        the driver when the quench phase begins)."""
        return ColdPlasmaSource(
            species,
            total_injected=self.injection_total,
            duration=self.injection_duration,
            cold_temperature=self.cold_temperature,
        )

    def initial_fields(self, fs, species: SpeciesSet) -> list[np.ndarray]:
        """Per-species initial coefficients: Maxwellians at the perturbed
        parameters, with ``runaway_seed_fraction`` of the electron
        density moved into a tail drifting at ``runaway_seed_drift``
        thermal velocities (the seed population the quench accelerates)."""
        from ..core.maxwellian import shifted_maxwellian_rz

        fields = []
        for idx, s in enumerate(species):
            frac = self.runaway_seed_fraction if idx == 0 else 0.0
            if frac == 0.0:
                fields.append(fs.interpolate(species_maxwellian(s)))
                continue
            vth, n = s.thermal_velocity, s.density
            drift = self.runaway_seed_drift * vth

            def f(r, z):
                bulk = shifted_maxwellian_rz(r, z, (1.0 - frac) * n, vth)
                tail = shifted_maxwellian_rz(r, z, frac * n, vth, drift)
                return bulk + tail

            fields.append(fs.interpolate(f))
        return fields

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-able image (stable field order; content-hash input)."""
        return {
            f.name: float(getattr(self, f.name))
            for f in sorted(dataclass_fields(self), key=lambda f: f.name)
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QuenchParameters":
        return cls(**{k: float(v) for k, v in data.items()})

    def content_key(self) -> str:
        """Stable content hash — the scenario's cache/checkpoint identity."""
        import hashlib
        import json

        blob = json.dumps(self.to_dict(), sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()


@dataclass
class QuenchHistory:
    """Time series of the Fig. 5 profile quantities."""

    t: list[float] = field(default_factory=list)
    n_e: list[float] = field(default_factory=list)
    J: list[float] = field(default_factory=list)
    E: list[float] = field(default_factory=list)
    T_e: list[float] = field(default_factory=list)
    phase: list[str] = field(default_factory=list)

    def record(self, t, n_e, J, E, T_e, phase) -> None:
        self.t.append(float(t))
        self.n_e.append(float(n_e))
        self.J.append(float(J))
        self.E.append(float(E))
        self.T_e.append(float(T_e))
        self.phase.append(phase)

    def as_arrays(self) -> dict[str, np.ndarray]:
        return {
            "t": np.array(self.t),
            "n_e": np.array(self.n_e),
            "J": np.array(self.J),
            "E": np.array(self.E),
            "T_e": np.array(self.T_e),
        }


def _ion_for_Z(Z: float) -> Species:
    """A fully stripped ion of charge Z (A ~ 2Z hydrogenic-like chain)."""
    from ..core.species import deuterium, hydrogenic

    if Z == 1.0:
        return deuterium(density=1.0)
    return hydrogenic(Z, density=1.0 / Z)


def measure_resistivity(
    Z: float = 1.0,
    efield: float = 0.02,
    dt: float = 0.5,
    max_steps: int = 60,
    settle_tol: float = 0.003,
    order: int = 3,
    mesh_kwargs: dict | None = None,
    units: UnitSystem = DEFAULT_UNITS,
    rtol: float = 1e-6,
    linear_solver="splu",
    max_newton: int = 50,
    controller: TimeStepController | None = None,
    guard: StepGuard | GuardConfig | bool = True,
    assembly_options: "AssemblyOptions | None" = None,
) -> dict:
    """Run an e + ion(Z) plasma to quasi-equilibrium; return eta = E/J.

    The Fig. 4 experiment: computed resistivity vs the Spitzer value as a
    function of the ion charge Z.  ``settle_tol`` is the relative change of
    J over a step below which the current is called quasi-steady.

    The run is resilient by default: every settle step is advanced by the
    adaptive retry/backoff loop of
    :meth:`~repro.core.solver.ImplicitLandauSolver.advance` under a
    :class:`~repro.resilience.guards.StepGuard` (density conservation,
    finiteness, positivity — momentum/energy are driven by the field and
    therefore not checked).  ``linear_solver`` accepts the usual plugs,
    including ``"fallback"`` and fault-injected chains, so the whole
    recovery stack can be exercised on this ramp.
    """
    _validate_stepping(dt, max_steps, "measure_resistivity")
    if not np.isfinite(efield):
        raise ValueError(f"measure_resistivity: efield must be finite, got {efield}")
    if not (np.isfinite(settle_tol) and settle_tol > 0):
        raise ValueError(
            f"measure_resistivity: settle_tol must be positive, got {settle_tol}"
        )
    ion = _ion_for_Z(Z)
    spc = SpeciesSet([electron(density=Z * ion.density), ion])
    mesh = landau_mesh(
        [s.thermal_velocity for s in spc], **(mesh_kwargs or {})
    )
    fs = FunctionSpace(mesh, order=order)
    op = LandauOperator(fs, spc, options=assembly_options)
    solver = ImplicitLandauSolver(
        op, rtol=rtol, linear_solver=linear_solver, max_newton=max_newton
    )
    mom = Moments(fs, spc)
    if guard is True:
        guard = StepGuard(mom)
    elif isinstance(guard, GuardConfig):
        guard = StepGuard(mom, guard)
    elif guard is False:
        guard = None
    controller = controller or TimeStepController(dt_init=dt)
    fields = [fs.interpolate(species_maxwellian(s)) for s in spc]

    J_prev = 0.0
    steps = 0
    t = 0.0
    for _ in range(max_steps):
        fields, t = solver.advance(
            fields, t + dt, controller, t0=t, efield=efield, guard=guard
        )
        steps += 1
        J = mom.current_z(fields)
        if J_prev != 0.0 and abs(J - J_prev) < settle_tol * abs(J):
            J_prev = J
            break
        J_prev = J
    eta = efield / J_prev if J_prev else float("inf")
    eta_sp = spitzer_eta_code(units, mom.electron_temperature(fields), Z)
    return {
        "Z": Z,
        "eta": float(eta),
        "eta_spitzer": float(eta_sp),
        "ratio": float(eta / eta_sp),
        "J": float(J_prev),
        "T_e": float(mom.electron_temperature(fields)),
        "steps": steps,
        "newton_iterations": solver.stats.newton_iterations,
        "step_rejections": solver.stats.step_rejections,
        "dt_backoffs": solver.stats.dt_backoffs,
        "converged_last": bool(solver.stats.converged_last),
        "stats": solver.stats,
    }


class ThermalQuenchModel:
    """The full Fig. 5 experiment driver, with adaptive stepping and
    checkpoint/restart.

    Each macro step of size ``dt`` (the history cadence) is advanced by
    the adaptive retry/backoff loop of
    :meth:`~repro.core.solver.ImplicitLandauSolver.advance`: when the
    quench collapses ``T_e`` and the quasi-Newton iteration stalls, the
    step is retried at half the ``dt`` (down to ``dt_min``) and the step
    size re-grows once the solve gets easy again.  ``run`` can write
    periodic checkpoints and ``resume`` continues a killed run so that the
    completed :class:`QuenchHistory` bitwise-matches an uninterrupted one.
    """

    def __init__(
        self,
        units: UnitSystem = DEFAULT_UNITS,
        Z: float = 1.0,
        E0_over_Ec: float = 0.5,
        order: int = 3,
        dt: float = 0.5,
        settle_tol: float = 0.005,
        source: ColdPlasmaSource | None = None,
        mesh_kwargs: dict | None = None,
        rtol: float = 1e-6,
        linear_solver="splu",
        max_newton: int = 50,
        controller: TimeStepController | None = None,
        guard: StepGuard | GuardConfig | bool = True,
        dt_min: float | None = None,
        assembly_options: "AssemblyOptions | None" = None,
        params: QuenchParameters | None = None,
    ):
        _validate_stepping(dt, 1, "ThermalQuenchModel")
        if params is None:
            # legacy knob path: Z / E0_over_Ec kwargs become the scenario
            params = QuenchParameters(Z=Z, E0_over_Ec=E0_over_Ec)
        elif not isinstance(params, QuenchParameters):
            raise TypeError(
                f"ThermalQuenchModel: params must be QuenchParameters, got {type(params).__name__}"
            )
        else:
            Z, E0_over_Ec = params.Z, params.E0_over_Ec
        if not (np.isfinite(settle_tol) and settle_tol > 0):
            raise ValueError(
                f"ThermalQuenchModel: settle_tol must be positive, got {settle_tol}"
            )
        if int(order) != order or order < 1:
            raise ValueError(f"ThermalQuenchModel: order must be >= 1, got {order}")
        self.units = units
        self.params = params
        self.species = params.species()
        self.source = source or params.source(self.species)
        # the mesh must resolve the *cold injected* electron population as
        # well as the initial Maxwellians, or the collapsed post-quench bulk
        # develops Gibbs oscillations (negative lobes -> unphysical J).
        import math

        cold = [
            math.sqrt(math.pi)
            / 2.0
            * math.sqrt(self.source.cold_temperature / s.mass)
            for s in self.species
        ]
        vths = [s.thermal_velocity for s in self.species] + cold
        kw = {"h_factor": 0.8}
        kw.update(mesh_kwargs or {})
        mesh = landau_mesh(vths, **kw)
        self.fs = FunctionSpace(mesh, order=order)
        self.order = int(order)
        self.op = LandauOperator(self.fs, self.species, options=assembly_options)
        self.solver = ImplicitLandauSolver(
            self.op, rtol=rtol, linear_solver=linear_solver, max_newton=max_newton
        )
        self.moments = Moments(self.fs, self.species)
        self.dt = float(dt)
        self.settle_tol = float(settle_tol)
        self.Z = Z
        self.E_c = connor_hastie_field_code(units, self.species[0].density)
        self.E0 = E0_over_Ec * self.E_c
        self._source_shapes = self.source.shape_vectors(self.fs)
        self.controller = controller or TimeStepController(dt_init=self.dt, dt_min=dt_min)
        if guard is True:
            self.guard = StepGuard(self.moments)
        elif isinstance(guard, GuardConfig):
            self.guard = StepGuard(self.moments, guard)
        elif guard is False:
            self.guard = None
        else:
            self.guard = guard

    # ------------------------------------------------------------------
    def _fingerprint(self) -> dict:
        """Configuration identity stored in checkpoints and validated on
        resume — resuming onto a different mesh/species/dt silently
        produces garbage, so it is refused instead."""
        return {
            "ndofs": int(self.fs.ndofs),
            "n_species": len(self.species),
            "Z": float(self.Z),
            "dt": float(self.dt),
            "order": self.order,
            "params": self.params.content_key(),
        }

    def _advance_macro(self, fields, t, efield, sources=None):
        """One history-cadence step of size ``dt``, adaptively substepped."""
        f, _ = self.solver.advance(
            fields,
            t + self.dt,
            self.controller,
            t0=t,
            efield=efield,
            sources=sources,
            guard=self.guard,
        )
        return f

    # ------------------------------------------------------------------
    def run(
        self,
        ramp_steps: int = 30,
        quench_steps: int = 40,
        post_steps: int = 10,
        *,
        checkpoint_path: str | None = None,
        checkpoint_every: int = 0,
        stop_after: int | None = None,
    ) -> QuenchHistory:
        """Execute the three phases; returns the Fig. 5 history.

        ``checkpoint_path`` + ``checkpoint_every=k`` writes a restartable
        checkpoint (atomically, overwriting) every ``k`` accepted macro
        steps.  ``stop_after=n`` stops the run after ``n`` macro steps —
        writing a final checkpoint when a path is given — and returns the
        partial history; :meth:`resume` picks the run back up.
        """
        for name, v in (("ramp_steps", ramp_steps), ("quench_steps", quench_steps)):
            if v < 1:
                raise ValueError(f"run: {name} must be >= 1, got {v}")
        if post_steps < 0:
            raise ValueError(f"run: post_steps must be >= 0, got {post_steps}")
        hist = QuenchHistory()
        fields = self.params.initial_fields(self.fs, self.species)
        s = self.moments.summary(fields)
        hist.record(0.0, s["n_e"], s["J_z"], self.E0, s["T_e"], "ramp")
        state = {
            "stage": "ramp",
            "k": 0,
            "E": self.E0,
            "J_prev": 0.0,
            "macro_steps": 0,
            "source_t_start": None,
            "ramp_steps": int(ramp_steps),
            "quench_steps": int(quench_steps),
            "post_steps": int(post_steps),
        }
        return self._run_loop(
            fields, 0.0, state, hist, checkpoint_path, checkpoint_every, stop_after
        )

    def resume(
        self,
        checkpoint_path: str,
        *,
        checkpoint_every: int = 0,
        new_checkpoint_path: str | None = None,
        stop_after: int | None = None,
    ) -> QuenchHistory:
        """Continue a checkpointed run to completion.

        The model must be constructed with the same configuration as the
        writer (the checkpoint's fingerprint is validated).  Returns the
        *full* history — the loaded prefix plus the continued steps —
        which bitwise-matches the history of an uninterrupted run.
        """
        ckpt = load_checkpoint(checkpoint_path)
        state = ckpt.extra
        fp = self._fingerprint()
        saved_fp = {k: state.get(k) for k in fp}
        if saved_fp != fp:
            raise CheckpointError(
                "checkpoint belongs to a different model configuration",
                diagnostics={"saved": saved_fp, "current": fp},
            )
        if ckpt.controller_state is not None:
            self.controller.load_state_vector(ckpt.controller_state)
        if state.get("source_t_start") is not None:
            self.source.t_start = state["source_t_start"]
        hist = ckpt.history if ckpt.history is not None else QuenchHistory()
        return self._run_loop(
            ckpt.fields,
            ckpt.t,
            state,
            hist,
            new_checkpoint_path or checkpoint_path,
            checkpoint_every,
            stop_after,
        )

    # ------------------------------------------------------------------
    def _run_loop(
        self,
        fields,
        t,
        state,
        hist,
        checkpoint_path,
        checkpoint_every,
        stop_after,
    ) -> QuenchHistory:
        mom = self.moments
        ramp_steps = state["ramp_steps"]
        quench_steps = state["quench_steps"]
        post_steps = state["post_steps"]
        E = state["E"]
        J_prev = state["J_prev"]
        macro = state["macro_steps"]

        def snapshot(stage: str, k: int) -> dict:
            return {
                "stage": stage,
                "k": int(k),
                "E": float(E),
                "J_prev": float(J_prev),
                "macro_steps": int(macro),
                "source_t_start": (
                    None if stage == "ramp" else float(self.source.t_start)
                ),
                "ramp_steps": ramp_steps,
                "quench_steps": quench_steps,
                "post_steps": post_steps,
                **self._fingerprint(),
            }

        def write_checkpoint(stage: str, k: int) -> None:
            save_checkpoint(
                checkpoint_path,
                fields=fields,
                t=t,
                controller=self.controller,
                history=hist,
                extra=snapshot(stage, k),
            )
            self.solver.stats.record_event("checkpoint", t=t, stage=stage, step=k)

        def after_step(stage: str, k: int) -> bool:
            """Checkpoint cadence + stop budget; True means stop now."""
            if stop_after is not None and macro >= stop_after:
                if checkpoint_path:
                    write_checkpoint(stage, k)
                return True
            if checkpoint_path and checkpoint_every and macro % checkpoint_every == 0:
                write_checkpoint(stage, k)
            return False

        def record(phase: str) -> None:
            s = mom.summary(fields)
            hist.record(t, s["n_e"], s["J_z"], E, s["T_e"], phase)

        # --- phase 1: fixed E, wait for quasi-equilibrium current -----------
        if state["stage"] == "ramp":
            k = state["k"]
            while k < ramp_steps:
                fields = self._advance_macro(fields, t, E)
                t += self.dt
                macro += 1
                J = mom.current_z(fields)
                record("ramp")
                settled = (
                    J_prev != 0.0 and abs(J - J_prev) < self.settle_tol * abs(J)
                )
                J_prev = J
                k = ramp_steps if settled else k + 1
                if after_step("ramp", k):
                    return hist
            self.source.t_start = t + self.params.injection_start
            state = {**state, "stage": "quench", "k": 0}

        # --- phases 2+3: E <- eta_Spitzer(T_e) J, with the cold pulse --------
        # The Ohmic feedback is integrated explicitly; under-relaxation keeps
        # the stiff eta(T_e) J coupling stable at quench time steps.
        rate_shapes = self._source_shapes
        relax = 0.3
        k = state["k"]
        while k < quench_steps + post_steps:
            T_e = max(mom.electron_temperature(fields), 1e-3)
            eta_sp = spitzer_eta_code(self.units, T_e, self.Z)
            J = mom.current_z(fields)
            E = (1.0 - relax) * E + relax * eta_sp * J
            rate = self.source.rate(t + 0.5 * self.dt)
            sources = [
                None if b is None else rate * b for b in rate_shapes
            ]
            fields = self._advance_macro(fields, t, E, sources=sources)
            t += self.dt
            macro += 1
            phase = "quench" if rate > 0.0 else "post"
            record(phase)
            k += 1
            if after_step("quench", k):
                return hist
        self.final_fields = fields
        return hist
