"""The thermal quench driver (section IV-C) and the Spitzer verification run.

The model is a velocity-space Vlasov-Poisson-Landau system for electrons
plus ions under a parallel electric field:

* **Phase 1 (current ramp).**  A fixed field ``E = E0`` (e.g. 0.5 E_c)
  accelerates electrons against collisional friction; the current ``J``
  asymptotes to a quasi-equilibrium.  ``eta = E / J`` there is the
  computed resistivity (the Fig. 4 verification quantity).
* **Phase 2 (quasi-equilibrium).**  Once ``dJ/dt`` is small the driver
  switches to ``E <- eta_Spitzer(T_e) * J``, holding the plasma in Ohmic
  balance.
* **Phase 3 (quench).**  A pulse of cold plasma is injected; ``T_e``
  collapses, Spitzer ``eta`` rises, hence ``E`` rises and accelerates the
  remaining hot electrons — the seed-runaway mechanism the paper shows in
  Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..amr import landau_mesh
from ..fem.function_space import FunctionSpace
from ..units import DEFAULT_UNITS, UnitSystem
from ..core.maxwellian import species_maxwellian
from ..core.moments import Moments
from ..core.operator import LandauOperator
from ..core.solver import ImplicitLandauSolver
from ..core.species import Species, SpeciesSet, electron
from .runaway import connor_hastie_field_code
from .source import ColdPlasmaSource
from .spitzer import spitzer_eta_code


@dataclass
class QuenchHistory:
    """Time series of the Fig. 5 profile quantities."""

    t: list[float] = field(default_factory=list)
    n_e: list[float] = field(default_factory=list)
    J: list[float] = field(default_factory=list)
    E: list[float] = field(default_factory=list)
    T_e: list[float] = field(default_factory=list)
    phase: list[str] = field(default_factory=list)

    def record(self, t, n_e, J, E, T_e, phase) -> None:
        self.t.append(float(t))
        self.n_e.append(float(n_e))
        self.J.append(float(J))
        self.E.append(float(E))
        self.T_e.append(float(T_e))
        self.phase.append(phase)

    def as_arrays(self) -> dict[str, np.ndarray]:
        return {
            "t": np.array(self.t),
            "n_e": np.array(self.n_e),
            "J": np.array(self.J),
            "E": np.array(self.E),
            "T_e": np.array(self.T_e),
        }


def _ion_for_Z(Z: float) -> Species:
    """A fully stripped ion of charge Z (A ~ 2Z hydrogenic-like chain)."""
    from ..core.species import deuterium, hydrogenic

    if Z == 1.0:
        return deuterium(density=1.0)
    return hydrogenic(Z, density=1.0 / Z)


def measure_resistivity(
    Z: float = 1.0,
    efield: float = 0.02,
    dt: float = 0.5,
    max_steps: int = 60,
    settle_tol: float = 0.003,
    order: int = 3,
    mesh_kwargs: dict | None = None,
    units: UnitSystem = DEFAULT_UNITS,
    rtol: float = 1e-6,
) -> dict[str, float]:
    """Run an e + ion(Z) plasma to quasi-equilibrium; return eta = E/J.

    The Fig. 4 experiment: computed resistivity vs the Spitzer value as a
    function of the ion charge Z.  ``settle_tol`` is the relative change of
    J over a step below which the current is called quasi-steady.
    """
    ion = _ion_for_Z(Z)
    spc = SpeciesSet([electron(density=Z * ion.density), ion])
    mesh = landau_mesh(
        [s.thermal_velocity for s in spc], **(mesh_kwargs or {})
    )
    fs = FunctionSpace(mesh, order=order)
    op = LandauOperator(fs, spc)
    solver = ImplicitLandauSolver(op, rtol=rtol)
    mom = Moments(fs, spc)
    fields = [fs.interpolate(species_maxwellian(s)) for s in spc]

    J_prev = 0.0
    steps = 0
    for _ in range(max_steps):
        fields = solver.step(fields, dt, efield=efield)
        steps += 1
        J = mom.current_z(fields)
        if J_prev != 0.0 and abs(J - J_prev) < settle_tol * abs(J):
            J_prev = J
            break
        J_prev = J
    eta = efield / J_prev if J_prev else float("inf")
    eta_sp = spitzer_eta_code(units, mom.electron_temperature(fields), Z)
    return {
        "Z": Z,
        "eta": float(eta),
        "eta_spitzer": float(eta_sp),
        "ratio": float(eta / eta_sp),
        "J": float(J_prev),
        "T_e": float(mom.electron_temperature(fields)),
        "steps": steps,
        "newton_iterations": solver.stats.newton_iterations,
    }


class ThermalQuenchModel:
    """The full Fig. 5 experiment driver."""

    def __init__(
        self,
        units: UnitSystem = DEFAULT_UNITS,
        Z: float = 1.0,
        E0_over_Ec: float = 0.5,
        order: int = 3,
        dt: float = 0.5,
        settle_tol: float = 0.005,
        source: ColdPlasmaSource | None = None,
        mesh_kwargs: dict | None = None,
        rtol: float = 1e-6,
    ):
        self.units = units
        ion = _ion_for_Z(Z)
        self.species = SpeciesSet([electron(density=Z * ion.density), ion])
        self.source = source or ColdPlasmaSource(self.species)
        # the mesh must resolve the *cold injected* electron population as
        # well as the initial Maxwellians, or the collapsed post-quench bulk
        # develops Gibbs oscillations (negative lobes -> unphysical J).
        import math

        cold = [
            math.sqrt(math.pi)
            / 2.0
            * math.sqrt(self.source.cold_temperature / s.mass)
            for s in self.species
        ]
        vths = [s.thermal_velocity for s in self.species] + cold
        kw = {"h_factor": 0.8}
        kw.update(mesh_kwargs or {})
        mesh = landau_mesh(vths, **kw)
        self.fs = FunctionSpace(mesh, order=order)
        self.op = LandauOperator(self.fs, self.species)
        self.solver = ImplicitLandauSolver(self.op, rtol=rtol)
        self.moments = Moments(self.fs, self.species)
        self.dt = float(dt)
        self.settle_tol = float(settle_tol)
        self.Z = Z
        self.E_c = connor_hastie_field_code(units, self.species[0].density)
        self.E0 = E0_over_Ec * self.E_c
        self._source_shapes = self.source.shape_vectors(self.fs)

    # ------------------------------------------------------------------
    def run(
        self,
        ramp_steps: int = 30,
        quench_steps: int = 40,
        post_steps: int = 10,
    ) -> QuenchHistory:
        """Execute the three phases; returns the Fig. 5 history."""
        hist = QuenchHistory()
        fields = [
            self.fs.interpolate(species_maxwellian(s)) for s in self.species
        ]
        t = 0.0
        E = self.E0
        mom = self.moments

        def record(phase: str) -> None:
            s = mom.summary(fields)
            hist.record(t, s["n_e"], s["J_z"], E, s["T_e"], phase)

        record("ramp")
        # --- phase 1: fixed E, wait for quasi-equilibrium current -----------
        J_prev = 0.0
        for _ in range(ramp_steps):
            fields = self.solver.step(fields, self.dt, efield=E)
            t += self.dt
            J = mom.current_z(fields)
            record("ramp")
            if J_prev != 0.0 and abs(J - J_prev) < self.settle_tol * abs(J):
                J_prev = J
                break
            J_prev = J

        # --- phases 2+3: E <- eta_Spitzer(T_e) J, with the cold pulse --------
        # The Ohmic feedback is integrated explicitly; under-relaxation keeps
        # the stiff eta(T_e) J coupling stable at quench time steps.
        self.source.t_start = t
        rate_shapes = self._source_shapes
        relax = 0.3
        for k in range(quench_steps + post_steps):
            T_e = max(mom.electron_temperature(fields), 1e-3)
            eta_sp = spitzer_eta_code(self.units, T_e, self.Z)
            J = mom.current_z(fields)
            E = (1.0 - relax) * E + relax * eta_sp * J
            rate = self.source.rate(t + 0.5 * self.dt)
            sources = [
                None if b is None else rate * b for b in rate_shapes
            ]
            fields = self.solver.step(
                fields, self.dt, efield=E, sources=sources
            )
            t += self.dt
            phase = "quench" if rate > 0.0 else "post"
            record(phase)
        self.final_fields = fields
        return hist
