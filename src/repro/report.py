"""ASCII tables and line plots for examples and benchmark output.

The benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep that output consistent and dependency-free.
:func:`solver_stats_table` and :func:`resilience_summary` render the
solver's :class:`~repro.core.solver.NewtonStats` — including the
resilience layer's retry/backoff counters, per-backend linear-solve
counts and the structured event log.
"""

from __future__ import annotations

import math
from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
    floatfmt: str = "{:,.4g}",
) -> str:
    """Simple fixed-width table."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append(
            [
                floatfmt.format(v) if isinstance(v, float) else f"{v}"
                for v in row
            ]
        )
    widths = [max(len(r[c]) for r in cells) for c in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(cells):
        lines.append("  ".join(s.rjust(w) for s, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def ascii_plot(
    x: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 72,
    height: int = 16,
    title: str | None = None,
    logy: bool = False,
) -> str:
    """Plot one or more series against x as ASCII art (Fig. 4 / Fig. 5)."""
    if not series:
        raise ValueError("need at least one series")
    marks = "*+o#@%&"
    xs = list(x)
    if len(xs) < 2:
        raise ValueError("need at least two points")
    ys_all = []
    for vals in series.values():
        if len(vals) != len(xs):
            raise ValueError("series length mismatch")
        ys_all.extend(float(v) for v in vals)
    if logy:
        ys_all = [math.log10(abs(v)) if v != 0 else -16.0 for v in ys_all]
    ymin, ymax = min(ys_all), max(ys_all)
    if ymax == ymin:
        ymax = ymin + 1.0
    xmin, xmax = min(xs), max(xs)
    grid = [[" "] * width for _ in range(height)]
    for si, (name, vals) in enumerate(series.items()):
        m = marks[si % len(marks)]
        for xv, yv in zip(xs, vals):
            if logy:
                yv = math.log10(abs(yv)) if yv != 0 else -16.0
            col = int((xv - xmin) / (xmax - xmin) * (width - 1))
            row = int((yv - ymin) / (ymax - ymin) * (height - 1))
            grid[height - 1 - row][col] = m
    lines = []
    if title:
        lines.append(title)
    lines.append(f"y in [{ymin:.4g}, {ymax:.4g}]" + (" (log10)" if logy else ""))
    lines.extend("|" + "".join(r) for r in grid)
    lines.append("+" + "-" * width)
    lines.append(f" x in [{xmin:.4g}, {xmax:.4g}]")
    legend = "   ".join(
        f"{marks[i % len(marks)]} = {name}" for i, name in enumerate(series)
    )
    lines.append(" " + legend)
    return "\n".join(lines)


def solver_stats_table(stats, title: str = "solver work") -> str:
    """One-row work/resilience table for a ``NewtonStats`` instance."""
    headers = [
        "steps",
        "newton",
        "jac",
        "factor",
        "solves",
        "struct-reuse",
        "par-builds",
        "rejected",
        "backoffs",
        "converged",
    ]
    rows = [
        [
            stats.time_steps,
            stats.newton_iterations,
            stats.jacobian_builds,
            stats.factorizations,
            stats.solves,
            getattr(stats, "structure_reuses", 0),
            getattr(stats, "parallel_builds", 0),
            stats.step_rejections,
            stats.dt_backoffs,
            "yes" if stats.converged_last else "NO",
        ]
    ]
    return format_table(headers, rows, title=title)


def resilience_summary(stats, max_events: int = 12) -> str:
    """Backend usage + the tail of the structured event log.

    This is the operator-facing record the acceptance runs check: which
    linear-solver backend served each solve, and every fallback /
    step-rejection event the run survived.
    """
    lines = [solver_stats_table(stats)]
    if stats.backend_solves:
        rows = sorted(stats.backend_solves.items(), key=lambda kv: -kv[1])
        lines.append("")
        lines.append(
            format_table(["backend", "solves served"], rows, title="linear-solver backends")
        )
    if stats.events:
        lines.append("")
        shown = stats.events[-max_events:]
        dropped = getattr(stats, "events_dropped", 0)
        total = len(stats.events) + dropped
        skipped = total - len(shown)
        title = "events" + (f" (last {len(shown)} of {total})" if skipped else "")
        rows = []
        for ev in shown:
            detail = ", ".join(
                f"{k}={v}" for k, v in ev.items() if k != "kind"
            )
            rows.append([ev.get("kind", "?"), detail[:96]])
        lines.append(format_table(["kind", "detail"], rows, title=title))
    return "\n".join(lines)


def serve_summary(snapshot: dict, campaign: dict | None = None) -> str:
    """Operator-facing rollup of a :class:`CollisionSolveService` snapshot.

    Renders the service sizing, job outcomes, the micro-batcher's
    batch-size histogram (is coalescing happening?), the operator-plan
    cache counters (are pair tables/band symbolics staying warm?) and a
    per-shard table with queue depth and latency percentiles.

    ``campaign`` accepts an ensemble campaign snapshot
    (:meth:`repro.ensemble.campaign.CampaignDriver.snapshot`): member
    completed/failed/resumed counts and campaign-job outcomes — plus the
    breaker trips and shed counts the service recorded while the
    campaign ran — are rolled into the same report instead of a separate
    print path.
    """
    opt = snapshot["options"]
    jobs = snapshot["jobs"]
    cache = snapshot["plan_cache"]
    solver = snapshot["solver"]
    lines = [
        format_table(
            ["shards", "max batch", "max wait (ms)", "queue bound", "executor"],
            [
                [
                    opt["num_shards"],
                    opt["max_batch"],
                    opt["max_wait_ms"],
                    opt["queue_bound"],
                    opt["executor"],
                ]
            ],
            title="collision solve service",
        ),
        "",
        format_table(
            ["total", "ok", "failed", "shed", "retried", "rejected"],
            [
                [
                    jobs["total"],
                    jobs["ok"],
                    jobs["failed"],
                    jobs["shed"],
                    jobs["retried"],
                    jobs["rejected_submissions"],
                ]
            ],
            title="jobs",
        ),
    ]
    if campaign is not None:
        m = campaign.get("members", {})
        lines += [
            "",
            format_table(
                [
                    "members",
                    "completed",
                    "failed",
                    "resumed",
                    "pending",
                    "retried jobs",
                    "shed jobs",
                    "breaker trips",
                ],
                [
                    [
                        m.get("total", 0),
                        m.get("completed", 0),
                        m.get("failed", 0),
                        m.get("resumed", 0),
                        m.get("pending", 0),
                        jobs["retried"],
                        jobs["shed"],
                        snapshot.get("failures", {}).get("breaker_trips", 0),
                    ]
                ],
                title=f"ensemble campaign: {campaign.get('name', '?')}",
            ),
        ]
    by_tag = jobs.get("by_tag") or {}
    if by_tag:
        shown = sorted(
            by_tag.items(), key=lambda kv: -sum(kv[1].values())
        )[:10]
        rows = [
            [
                tag,
                c.get("ok", 0),
                c.get("failed", 0),
                c.get("shed", 0),
                c.get("retried", 0),
            ]
            for tag, c in shown
        ]
        title = "jobs by tag" + (
            f" (top {len(shown)} of {len(by_tag)})"
            if len(by_tag) > len(shown)
            else ""
        )
        lines += [
            "",
            format_table(["tag", "ok", "failed", "shed", "retried"], rows, title=title),
        ]
    if snapshot["batch_size_hist"]:
        rows = [
            [size, count]
            for size, count in sorted(
                snapshot["batch_size_hist"].items(), key=lambda kv: int(kv[0])
            )
        ]
        lines += ["", format_table(["batch size", "batches"], rows, title="micro-batches")]
    lines += [
        "",
        format_table(
            ["plans", "MiB", "hits", "misses", "evictions", "hit rate"],
            [
                [
                    cache["plans"],
                    cache["bytes"] / 2**20,
                    cache["hits"],
                    cache["misses"],
                    cache["evictions"],
                    cache["hit_rate"],
                ]
            ],
            title="operator-plan cache",
        ),
        "",
        format_table(
            ["field launches", "launch equiv", "reduction", "sym setups", "sym reuses"],
            [
                [
                    solver["field_launches"],
                    solver["equivalent_unbatched_launches"],
                    solver["launch_reduction"],
                    solver["symbolic_setups"],
                    solver["symbolic_reuses"],
                ]
            ],
            title="batched solver work",
        ),
    ]
    shard_rows = [
        [
            s["shard"],
            s["jobs_ok"] + s["jobs_failed"] + s["jobs_shed"],
            s["batches"],
            s["max_queue_depth"],
            s["latency"]["p50_ms"],
            s["latency"]["p99_ms"],
        ]
        for s in snapshot["shards"]
    ]
    lines += [
        "",
        format_table(
            ["shard", "jobs", "batches", "max depth", "p50 (ms)", "p99 (ms)"],
            shard_rows,
            title="per-shard",
        ),
    ]
    return "\n".join(lines)
