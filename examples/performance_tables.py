#!/usr/bin/env python3
"""Tables II, III, V, VI, VII, VIII: the full performance study.

Builds the paper's 10-species / ~80-cell workload, runs the functional
kernel simulation once for exact work counters, and derives every
throughput and component-time table from the calibrated device/node/MPS
models — the complete section V reproduction in one command.

Run:  python examples/performance_tables.py
"""

from repro.perf import (
    build_paper_workload,
    fugaku_table,
    spock_hip_table,
    summit_cuda_table,
    summit_kokkos_table,
)
from repro.perf.components import component_table, format_component_table
from repro.perf.summary import format_summary_table, summary_table
from repro.gpu.device import V100, MI100


def main() -> None:
    print("building the 10-species / 80-cell Q3 workload "
          "(functional kernel simulation) ...", flush=True)
    wl = build_paper_workload()
    print(
        f"  N = {wl.fs.n_integration_points} IPs, n = {wl.fs.ndofs} dofs/species, "
        f"band width B = {wl.band_width}\n"
        f"  modelled per-iteration kernel: V100 {wl.kernel_time(V100)*1e3:.2f} ms, "
        f"MI100 {wl.kernel_time(MI100, overhead=1.1)*1e3:.2f} ms"
    )

    print("\n=== Table II (paper best: 7,005 its/s) ===")
    print(summit_cuda_table(wl).format())

    print("\n=== Table III (paper best: 6,193 its/s) ===")
    print(summit_kokkos_table(wl).format())

    print("\n=== Table V (paper: rollover 353 -> 241 at 16 ranks/GPU) ===")
    print(spock_hip_table(wl).format())

    print("\n=== Table VI (paper: 19.3 s Jacobian at 4x8; total 25.1 s) ===")
    print(fugaku_table(wl).format())

    print("\n=== Table VII (component times, seconds per run) ===")
    print(format_component_table(component_table(wl)))

    print("\n=== Table VIII (summary) ===")
    print(format_summary_table(summary_table(wl)))


if __name__ == "__main__":
    main()
