#!/usr/bin/env python3
"""Table I: single grid vs grid-per-species-group (section III-H).

For the 10-species plasma (electrons, deuterium, eight tungsten charge
states) compares three grid plans: one shared grid, three clustered grids
(species within 2x thermal velocity share), and one grid per species —
reporting integration points, Landau tensor count and equation count, plus
a demonstration that the clustered plan's cross-grid operator conserves
density.

Run:  python examples/multigrid_species.py
"""

import numpy as np

from repro.core import grid_cost_table, plan_grids
from repro.core.grids import GridSet
from repro.core.maxwellian import species_maxwellian
from repro.perf.workload import build_paper_species
from repro.report import format_table


def main() -> None:
    species = build_paper_species()
    vths = species.thermal_velocities
    print("species:", ", ".join(s.name for s in species))
    print("thermal velocities (v0 units):", np.array2string(vths, precision=4))

    plans = [
        [list(range(len(species)))],
        plan_grids(species),
        [[i] for i in range(len(species))],
    ]
    print("\nclustered plan:", plans[1])

    rows = grid_cost_table(species, plans, order=3)
    print()
    print(
        format_table(
            ["# grids", "cells", "N IPs", "# Landau tensors", "n equations"],
            [
                [r["grids"], r["cells"], r["integration_points"], r["landau_tensors"], r["equations"]]
                for r in rows
            ],
            title="Table I — cost for the Landau operator vs number of grids\n"
            "(paper: 1184/0.9M-in-3-grid-units... see EXPERIMENTS.md for the row-by-row comparison)",
        )
    )

    # exercise the cross-grid operator on the clustered plan
    gs = GridSet(species, groups=plans[1], order=2)
    fields = {
        i: gs.grids[gs.grid_of_species(i)].fs.interpolate(
            species_maxwellian(species[i])
        )
        for i in range(len(species))
    }
    J = gs.jacobian(fields)
    worst = 0.0
    for i in range(len(species)):
        g = gs.grids[gs.grid_of_species(i)]
        ones = np.ones(g.fs.ndofs)
        Cf = J[i] @ fields[i]
        worst = max(worst, abs(ones @ Cf) / max(np.abs(Cf).sum(), 1e-300))
    print(
        f"\ncross-grid operator density-conservation residual "
        f"(worst species): {worst:.2e}"
    )


if __name__ == "__main__":
    main()
