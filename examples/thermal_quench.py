#!/usr/bin/env python3
"""Figure 5: the thermal quench experiment.

Ramps a deuterium plasma to quasi-equilibrium current under E = 0.5 E_c
(Connor-Hastie), switches to Ohmic feedback E = eta_Spitzer(T_e) J, injects
a 5x cold-plasma pulse, and plots the n_e / J / E / T_e profiles vs time in
electron-electron collision-time units — the paper's Fig. 5 dynamics:
density ramp conserved exactly, temperature collapse, rising E, current
decay followed by slow field-driven recovery.

Run:  python examples/thermal_quench.py [--fast]
"""

import sys

from repro.quench import ThermalQuenchModel
from repro.report import ascii_plot, format_table


def main(fast: bool = False) -> None:
    model = ThermalQuenchModel(dt=0.5, rtol=1e-5 if fast else 1e-6)
    if fast:
        model.source.duration = 6.0
        model._source_shapes = model.source.shape_vectors(model.fs)
    print(
        f"mesh: {model.fs.nelem} cells, {model.fs.ndofs} dofs; "
        f"E_c = {model.E_c:.4g}, E0 = 0.5 E_c = {model.E0:.4g} (code units)"
    )
    steps = (10, 12, 4) if fast else (25, 30, 14)
    hist = model.run(
        ramp_steps=steps[0], quench_steps=steps[1], post_steps=steps[2]
    )
    a = hist.as_arrays()

    print()
    print(
        format_table(
            ["t", "phase", "n_e", "J", "E", "T_e"],
            [
                [a["t"][i], hist.phase[i], a["n_e"][i], a["J"][i], a["E"][i], a["T_e"][i]]
                for i in range(0, len(a["t"]), max(1, len(a["t"]) // 16))
            ],
            title="Fig. 5 — quench history (code units, t in e-e collision times)",
        )
    )
    print()
    print(
        ascii_plot(
            a["t"],
            {
                "n_e/6": a["n_e"] / 6.0,
                "T_e": a["T_e"],
                "J/Jmax": a["J"] / max(abs(a["J"]).max(), 1e-30),
                "E/Emax": a["E"] / max(abs(a["E"]).max(), 1e-30),
            },
            width=70,
            height=16,
            title="Fig. 5 — normalized quench profiles",
        )
    )
    inj = model.source.injected_by(a["t"][-1])
    print(
        f"\ninjected mass: {inj:.2f} x n_e(0) (prescribed 5.0); "
        f"measured n_e(end) = {a['n_e'][-1]:.3f} "
        f"(density conservation error {abs(a['n_e'][-1] - 1 - inj):.2e})"
    )


if __name__ == "__main__":
    main(fast="--fast" in sys.argv)
