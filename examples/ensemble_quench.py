"""Ensemble campaigns & UQ: the Fig. 5 quench as a distribution.

Samples a seeded 8-member stochastic quench design (Karhunen-Loève
perturbed Maxwellians, randomized cold-plasma pulses, impurity mix,
runaway seeds), runs it through the batched collision-solve service as a
checkpointed campaign, and prints the quench-time / post-quench
resistivity / runaway-seed-fraction distributions with bootstrap CIs
plus the one-at-a-time sensitivity indices.

Run with::

    PYTHONPATH=src python examples/ensemble_quench.py [--fast]

The campaign ledger lands in a temp directory; to see resume-after-kill
in action, point ``REPRO_ENSEMBLE_CHECKPOINT_DIR`` somewhere durable,
kill the process mid-run, and re-run with ``--resume``.
"""

from __future__ import annotations

import os
import sys
import tempfile

from repro.ensemble import (
    CampaignDriver,
    CampaignOptions,
    ScenarioDesign,
    campaign_report,
    write_campaign_json,
)
from repro.serve import CollisionSolveService, ServeOptions


def main(fast: bool = False, resume: bool = False) -> None:
    design = ScenarioDesign(members=4 if fast else 8, seed=1, Z_choices=(1.0, 2.0))
    options = CampaignOptions.from_env(
        dt=0.5,
        max_steps=6 if fast else 24,
        post_steps=2 if fast else 4,
        order=2,
        mesh_kwargs={"h_factor": 1.6} if fast else None,
        quench_threshold=0.8 if fast else 0.5,
    )
    ckpt = options.checkpoint_dir or tempfile.mkdtemp(prefix="ensemble_quench_")
    options.checkpoint_dir = ckpt

    service = CollisionSolveService(ServeOptions(num_shards=2, max_batch=64))
    driver = CampaignDriver(design, options, service=service)
    print(
        f"campaign: {design.members} members, seed {design.seed}, "
        f"{driver.fs.ndofs} dofs, ledger in {ckpt}"
    )
    try:
        results = driver.run(resume=resume)
        stats = driver.statistics()
        print()
        print(campaign_report(driver.snapshot(), stats, service.snapshot()))
        out = os.path.join(ckpt, "BENCH_ensemble.json")
        write_campaign_json(out, driver.snapshot(), stats, service.snapshot())
        print(f"\n{sum(r.status == 'ok' for r in results)}/{len(results)} "
              f"members completed; JSON artifact: {out}")
    finally:
        service.close()


if __name__ == "__main__":
    main(fast="--fast" in sys.argv, resume="--resume" in sys.argv)
