#!/usr/bin/env python3
"""Quickstart: relax an anisotropic electron-deuterium plasma.

Builds the paper's adapted velocity-space mesh, assembles the conservative
Landau collision operator, runs the implicit quasi-Newton integrator and
prints the conserved moments at each step — the three conservation laws
(density, momentum, energy) hold to solver accuracy while the temperature
anisotropy relaxes away.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.amr import landau_mesh
from repro.core import (
    ImplicitLandauSolver,
    LandauOperator,
    Moments,
    SpeciesSet,
    deuterium,
    electron,
)
from repro.core.maxwellian import species_maxwellian
from repro.fem import FunctionSpace
from repro.report import format_table


def main() -> None:
    species = SpeciesSet([electron(), deuterium()])
    mesh = landau_mesh([s.thermal_velocity for s in species])
    fs = FunctionSpace(mesh, order=3)
    print(f"mesh: {mesh.nelem} cells, {fs.ndofs} free dofs, "
          f"{fs.n_integration_points} integration points")

    op = LandauOperator(fs, species)
    solver = ImplicitLandauSolver(op, rtol=1e-8)
    moments = Moments(fs, species)

    # electrons hotter along z than r (temperature anisotropy); D at rest
    def aniso_electron(r, z):
        vth = species[0].thermal_velocity
        vr, vz = 0.8 * vth, 1.2 * vth
        return np.exp(-((r / vr) ** 2) - (z / vz) ** 2) / (
            np.pi**1.5 * vr * vr * vz
        )

    fields = [
        fs.interpolate(aniso_electron),
        fs.interpolate(species_maxwellian(species[1])),
    ]

    r, z = fs.qpoints[:, :, 0], fs.qpoints[:, :, 1]

    def anisotropy(x):
        fq = fs.eval(x)
        Tr = fs.integrate(r**2 * fq) / 2.0
        Tz = fs.integrate(z**2 * fq)
        return (Tz - Tr) / (Tr + Tz)

    rows = []
    dt, nsteps = 0.5, 10
    for k in range(nsteps + 1):
        s = moments.summary(fields)
        rows.append(
            [k * dt, s["n_e"], s["p_z"], s["energy"], anisotropy(fields[0])]
        )
        if k < nsteps:
            fields = solver.step(fields, dt)

    print()
    print(
        format_table(
            ["t", "n_e", "p_z (total)", "energy (total)", "e-anisotropy"],
            rows,
            title="conservation + relaxation (collision-time units)",
            floatfmt="{:,.6g}",
        )
    )
    print(f"\nNewton iterations: {solver.stats.newton_iterations} "
          f"over {solver.stats.time_steps} steps")
    a0, a1 = rows[0][-1], rows[-1][-1]
    print(f"anisotropy {a0:.3f} -> {a1:.3f} "
          f"(relaxed by {100 * (1 - a1 / a0):.0f}%)")


if __name__ == "__main__":
    main()
