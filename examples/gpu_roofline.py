#!/usr/bin/env python3
"""Table IV: roofline analysis of the Landau kernels on the CUDA model.

Runs Algorithm 1 (and the mass kernel) on the simulated device for the
paper's 10-species problem, prints the counted instruction mix, the
arithmetic intensities and the roofline classification — the reproduction
of the Nsight Compute study of section V-A1.

Run:  python examples/gpu_roofline.py
"""

from repro.core.kernel_cuda import CudaLandauJacobian
from repro.core.maxwellian import species_maxwellian
from repro.amr import landau_mesh
from repro.fem import FunctionSpace
from repro.gpu import CudaMachine, V100, MI100, profile_kernel, roofline_report
from repro.perf.workload import build_paper_species
from repro.report import format_table


def main() -> None:
    species = build_paper_species()
    mesh = landau_mesh([s.thermal_velocity for s in species])
    fs = FunctionSpace(mesh, order=3)
    fields = [fs.interpolate(species_maxwellian(s)) for s in species]
    print(
        f"problem: {len(species)} species, {fs.nelem} Q3 cells, "
        f"N = {fs.n_integration_points} IPs, block = 16x16"
    )

    mach_j = CudaMachine(V100)
    CudaLandauJacobian(fs, species, machine=mach_j).build(fields)
    mach_m = CudaMachine(V100)
    CudaLandauJacobian(fs, species, machine=mach_m).build_mass()

    cj, cm = mach_j.counters, mach_m.counters
    print()
    print(
        format_table(
            ["kernel", "FMA", "MUL", "ADD", "special", "DFMA frac", "DRAM MB", "L1 MB", "atomics"],
            [
                ["Jacobian", cj.fma, cj.mul, cj.add, cj.special,
                 f"{cj.dfma_fraction:.2f}", f"{cj.dram_bytes/1e6:.1f}",
                 f"{cj.shared_bytes/1e6:.1f}", cj.atomic_adds],
                ["Mass", cm.fma, cm.mul, cm.add, cm.special,
                 f"{cm.dfma_fraction:.2f}", f"{cm.dram_bytes/1e6:.1f}",
                 f"{cm.shared_bytes/1e6:.1f}", cm.atomic_adds],
            ],
            title="counted work (one Jacobian + one mass build)",
        )
    )

    for dev in (V100, MI100):
        pj = profile_kernel("Jacobian", cj, dev, launches=1)
        pm = profile_kernel("Mass", cm, dev, launches=1)
        print(f"\n{dev.name} (roofline knee at AI = {dev.roofline_knee:.1f}):")
        print(roofline_report([pj, pm]))
    print(
        "\npaper (V100): Jacobian AI 15.8, 53% roofline, FP64 pipe 66.4%; "
        "Mass AI 1.8, 17%, L1-bound (27%)"
    )


if __name__ == "__main__":
    main()
