#!/usr/bin/env python3
"""Figures 1 & 3: adaptive velocity-space meshes for Maxwellian plasmas.

Generates the paper's grids — the 20-cell single-species mesh (Fig. 3), the
electron-deuterium shared grid (Fig. 1), and the electron-tungsten grid of
the Table I discussion — and renders an ASCII picture of each (cell depth
by region).

Run:  python examples/amr_meshes.py
"""

import numpy as np

from repro import constants as c
from repro.amr import landau_mesh
from repro.core import deuterium, electron
from repro.fem import FunctionSpace
from repro.report import format_table


def render_mesh(mesh, width: int = 48, height: int = 24) -> str:
    """ASCII rendering: each character shows the local refinement depth."""
    r0, r1, z0, z1 = mesh.bounds
    hmax = mesh.size.max()
    glyphs = "0123456789ABC"
    rows = []
    for iy in range(height):
        z = z1 - (iy + 0.5) * (z1 - z0) / height
        row = []
        for ix in range(width):
            r = r0 + (ix + 0.5) * (r1 - r0) / width
            e = mesh.element_containing(np.array([r, z]))
            if e < 0:
                row.append(" ")
            else:
                depth = int(round(np.log2(hmax / mesh.size[e, 0])))
                row.append(glyphs[min(depth, len(glyphs) - 1)])
        rows.append("".join(row))
    return "\n".join(rows)


def main() -> None:
    ve = electron().thermal_velocity
    vd = deuterium().thermal_velocity
    vw = ve / np.sqrt(c.TUNGSTEN_MASS_RATIO)

    cases = [
        ("Fig. 3 — single species (paper: 20 cells, 193 vertices)", [ve]),
        ("Fig. 1 — electron + deuterium shared grid", [ve, vd]),
        ("Sec. III-H — electron + tungsten shared grid (paper: ~74 cells)", [ve, vw]),
    ]
    stats = []
    for title, vths in cases:
        mesh = landau_mesh(vths)
        fs = FunctionSpace(mesh, order=3)
        stats.append(
            [
                title.split(" — ")[0],
                mesh.nelem,
                fs.ndofs,
                fs.dofmap.n_constrained,
                fs.n_integration_points,
                f"{mesh.size.min():.2e}",
            ]
        )
        print(title)
        print(render_mesh(mesh))
        print()

    print(
        format_table(
            ["grid", "cells", "vertices (n)", "constrained", "IPs (N)", "min cell"],
            stats,
            title="mesh inventory (Q3)",
        )
    )


if __name__ == "__main__":
    main()
