#!/usr/bin/env python3
"""Export Fig. 1 / Fig. 3 meshes and distributions to VTK files.

Produces the visualization artifacts the paper renders in VisIt: the AMR
mesh (with per-cell refinement depth), the electron Maxwellian and — after
a few collision times with an E-field — the perturbed distribution.

Run:  python examples/export_vtk.py [outdir]
"""

import pathlib
import sys

import numpy as np

from repro.amr import landau_mesh
from repro.core import (
    ImplicitLandauSolver,
    LandauOperator,
    SpeciesSet,
    deuterium,
    electron,
)
from repro.core.maxwellian import species_maxwellian
from repro.fem import FunctionSpace, field_to_vtk, mesh_to_vtk


def main(outdir: str = "vtk_out") -> None:
    out = pathlib.Path(outdir)
    out.mkdir(exist_ok=True)
    species = SpeciesSet([electron(), deuterium()])
    mesh = landau_mesh([s.thermal_velocity for s in species])
    fs = FunctionSpace(mesh, order=3)

    depth = np.log2(mesh.size[:, 0].max() / mesh.size[:, 0])
    (out / "mesh.vtk").write_text(mesh_to_vtk(mesh, {"depth": depth}))

    f0 = [fs.interpolate(species_maxwellian(s)) for s in species]
    (out / "maxwellians.vtk").write_text(
        field_to_vtk(fs, {"f_e": f0[0], "f_D": f0[1]})
    )

    op = LandauOperator(fs, species)
    solver = ImplicitLandauSolver(op, rtol=1e-6)
    f1 = solver.integrate(f0, dt=0.5, nsteps=6, efield=0.02)
    (out / "driven.vtk").write_text(
        field_to_vtk(fs, {"f_e": f1[0], "f_D": f1[1]}, refine=2)
    )
    for name in ("mesh.vtk", "maxwellians.vtk", "driven.vtk"):
        size = (out / name).stat().st_size
        print(f"wrote {out / name} ({size / 1024:.0f} kB)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "vtk_out")
