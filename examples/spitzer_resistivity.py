#!/usr/bin/env python3
"""Figure 4: computed resistivity eta = E/J vs Spitzer, as a function of Z.

Applies a small parallel electric field to an electron + ion(Z) plasma,
integrates to a quasi-equilibrium current, and compares the resulting
resistivity to the Spitzer formula (eq. 12).  The paper's deuterium case
settles about 1% below Spitzer; this driver reproduces that within a few
percent per Z (tolerances depend on how long each run settles).

Run:  python examples/spitzer_resistivity.py [Z ...]
      (default sweep: Z = 1 2 4)
"""

import sys

from repro.quench import measure_resistivity
from repro.report import ascii_plot, format_table


def main(zs: list[float]) -> None:
    rows = []
    for Z in zs:
        print(f"running Z = {Z:g} ...", flush=True)
        rows.append(
            measure_resistivity(
                Z=Z, dt=0.5, max_steps=40, settle_tol=0.003, order=3
            )
        )
    print()
    print(
        format_table(
            ["Z", "eta = E/J", "eta_Spitzer(T_e)", "eta/eta_Sp", "T_e/T0", "steps"],
            [
                [r["Z"], r["eta"], r["eta_spitzer"], r["ratio"], r["T_e"], r["steps"]]
                for r in rows
            ],
            title="Fig. 4 — FP-Landau vs Spitzer resistivity (code units)",
        )
    )
    if len(rows) >= 2:
        print()
        print(
            ascii_plot(
                [r["Z"] for r in rows],
                {
                    "eta=E/J": [r["eta"] for r in rows],
                    "Spitzer": [r["eta_spitzer"] for r in rows],
                },
                width=56,
                height=12,
                title="calculated eta and Spitzer eta vs Z",
            )
        )


if __name__ == "__main__":
    zs = [float(a) for a in sys.argv[1:]] or [1.0, 2.0, 4.0]
    main(zs)
